package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"janus/internal/sim"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowFullRate(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	var doneAt sim.Time
	net.StartFlow("f", 1000, []*Link{l}, func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt, 10, 1e-9) {
		t.Fatalf("completion at %v, want 10", doneAt)
	}
	if !almostEqual(l.CarriedBytes(), 1000, 1e-6) {
		t.Fatalf("carried %v, want 1000", l.CarriedBytes())
	}
}

func TestLatencyAddsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	a := net.NewLink("a", "test", 100, 0.5)
	b := net.NewLink("b", "test", 100, 0.25)
	var doneAt sim.Time
	net.StartFlow("f", 100, []*Link{a, b}, func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt, 0.75+1, 1e-9) {
		t.Fatalf("completion at %v, want 1.75", doneAt)
	}
}

func TestZeroSizeFlowIsLatencyOnly(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	a := net.NewLink("a", "test", 100, 0.5)
	var doneAt sim.Time
	net.StartFlow("ctl", 0, []*Link{a}, func(f *Flow) { doneAt = eng.Now() })
	eng.Run()
	if !almostEqual(doneAt, 0.5, 1e-12) {
		t.Fatalf("completion at %v, want 0.5", doneAt)
	}
	if a.CarriedBytes() != 0 {
		t.Fatalf("zero-size flow carried bytes")
	}
}

func TestEmptyPathFlowCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	done := false
	net.StartFlow("local", 12345, nil, func(f *Flow) { done = true })
	eng.Run()
	if !done || eng.Now() != 0 {
		t.Fatalf("empty-path flow: done=%v now=%v", done, eng.Now())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	var t1, t2 sim.Time
	net.StartFlow("f1", 500, []*Link{l}, func(f *Flow) { t1 = eng.Now() })
	net.StartFlow("f2", 1000, []*Link{l}, func(f *Flow) { t2 = eng.Now() })
	eng.Run()
	// Both run at 50 B/s until f1 finishes at t=10; f2 then has 500 left
	// at 100 B/s, finishing at t=15.
	if !almostEqual(t1, 10, 1e-9) || !almostEqual(t2, 15, 1e-9) {
		t.Fatalf("t1=%v t2=%v, want 10, 15", t1, t2)
	}
}

func TestMaxMinClassicThreeFlows(t *testing.T) {
	// Classic max-min example: links A(cap 10) and B(cap 4).
	// f1 crosses A only, f2 crosses A and B, f3 crosses B only.
	// Fair shares: B is bottleneck (4/2=2) -> f2=f3=2; then f1 gets 10-2=8.
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	a := net.NewLink("A", "test", 10, 0)
	b := net.NewLink("B", "test", 4, 0)
	f1 := net.StartFlow("f1", 1e6, []*Link{a}, nil)
	f2 := net.StartFlow("f2", 1e6, []*Link{a, b}, nil)
	f3 := net.StartFlow("f3", 1e6, []*Link{b}, nil)
	eng.RunUntil(1) // let rates settle; nothing completes for a long time
	if !almostEqual(f1.Rate(), 8, 1e-9) || !almostEqual(f2.Rate(), 2, 1e-9) || !almostEqual(f3.Rate(), 2, 1e-9) {
		t.Fatalf("rates = %v %v %v, want 8 2 2", f1.Rate(), f2.Rate(), f3.Rate())
	}
}

func TestRateRecomputedOnArrival(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	var done1 sim.Time
	net.StartFlow("f1", 1000, []*Link{l}, func(f *Flow) { done1 = eng.Now() })
	eng.At(5, func() {
		net.StartFlow("f2", 250, []*Link{l}, nil)
	})
	eng.Run()
	// f1 runs alone 0-5 (500 bytes), then shares 50/50. f2 finishes 250
	// bytes at t=10; f1's last 250 bytes: 5s at 50 B/s -> 250 done at 10,
	// then full rate... exactly: at t=10 both have delivered 250 since t=5,
	// so f1 has 250 left, finishing at 12.5.
	if !almostEqual(done1, 12.5, 1e-9) {
		t.Fatalf("f1 done at %v, want 12.5", done1)
	}
}

// The Figure-7 microcosm: three pullers fetching from the same source
// serialize on its egress (same-order schedule), while a staggered
// schedule where each puller targets a distinct source completes ~3x
// faster.
func TestEgressContentionVsStaggered(t *testing.T) {
	mk := func() (*sim.Engine, *Network, []*Link) {
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		egress := make([]*Link, 4)
		for i := range egress {
			egress[i] = net.NewLink(fmt.Sprintf("egress%d", i), "nvlink", 100, 0)
		}
		return eng, net, egress
	}

	// Same order: workers 1,2,3 all pull from source 0 at once.
	eng, net, eg := mk()
	var last sim.Time
	for i := 0; i < 3; i++ {
		net.StartFlow("pull", 100, []*Link{eg[0]}, func(f *Flow) { last = eng.Now() })
	}
	eng.Run()
	sameOrder := last

	// Staggered: each worker pulls from a distinct source.
	eng2, net2, eg2 := mk()
	var last2 sim.Time
	for i := 1; i <= 3; i++ {
		net2.StartFlow("pull", 100, []*Link{eg2[i]}, func(f *Flow) { last2 = eng2.Now() })
	}
	eng2.Run()
	staggered := last2

	if !almostEqual(sameOrder, 3, 1e-9) || !almostEqual(staggered, 1, 1e-9) {
		t.Fatalf("sameOrder=%v staggered=%v, want 3 and 1", sameOrder, staggered)
	}
}

func TestBusySecondsSaturatedLink(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	net.StartFlow("f1", 500, []*Link{l}, nil)
	net.StartFlow("f2", 500, []*Link{l}, nil)
	eng.Run()
	if !almostEqual(l.BusySeconds(), 10, 1e-9) {
		t.Fatalf("busy = %v, want 10", l.BusySeconds())
	}
}

// Property: conservation — every byte injected is carried by every link
// on its path, and completion times are consistent with link capacities.
func TestConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		nLinks := 2 + rng.Intn(5)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = net.NewLink(fmt.Sprintf("l%d", i), "test", 10+rng.Float64()*1000, 0)
		}
		nFlows := 1 + rng.Intn(12)
		type exp struct{ flowBytes float64 }
		perLink := make([]float64, nLinks)
		var totalIn float64
		for i := 0; i < nFlows; i++ {
			// random non-empty path of distinct links
			perm := rng.Perm(nLinks)
			plen := 1 + rng.Intn(nLinks)
			path := make([]*Link, 0, plen)
			for _, pi := range perm[:plen] {
				path = append(path, links[pi])
			}
			size := 1 + rng.Float64()*10000
			totalIn += size
			for _, l := range path {
				perLink[l.index] += size
			}
			at := rng.Float64() * 5
			eng.At(at, func() { net.StartFlow("f", size, path, nil) })
		}
		eng.Run()
		net.Sync()
		for i, l := range links {
			if !almostEqual(l.CarriedBytes(), perLink[i], 1e-3*(1+perLink[i])) {
				return false
			}
		}
		_ = totalIn
		return net.ActiveFlows() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: no link is ever overdriven — carried bytes on a link can
// never exceed capacity times the span it was in use, and BusySeconds
// never exceeds total elapsed time.
func TestCapacityRespectedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		links := make([]*Link, 3)
		for i := range links {
			links[i] = net.NewLink(fmt.Sprintf("l%d", i), "test", 50+rng.Float64()*200, 0)
		}
		for i := 0; i < 10; i++ {
			path := []*Link{links[rng.Intn(3)]}
			if rng.Intn(2) == 0 {
				other := links[rng.Intn(3)]
				if other != path[0] {
					path = append(path, other)
				}
			}
			size := 1 + rng.Float64()*5000
			at := rng.Float64() * 2
			eng.At(at, func() { net.StartFlow("f", size, path, nil) })
		}
		eng.Run()
		net.Sync()
		elapsed := eng.Now()
		for _, l := range links {
			if l.BusySeconds() > elapsed+1e-9 {
				return false
			}
			if l.CarriedBytes() > l.Capacity()*elapsed+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — after rates settle with long flows, no
// flow could be given a higher rate without reducing the rate of a flow
// whose rate is no larger (checked via: every flow crosses at least one
// saturated link where it has a maximal rate among that link's flows).
func TestMaxMinProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		nLinks := 2 + rng.Intn(4)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = net.NewLink(fmt.Sprintf("l%d", i), "test", 10+rng.Float64()*100, 0)
		}
		nFlows := 1 + rng.Intn(8)
		flows := make([]*Flow, nFlows)
		paths := make([][]*Link, nFlows)
		for i := range flows {
			perm := rng.Perm(nLinks)
			plen := 1 + rng.Intn(nLinks)
			path := make([]*Link, 0, plen)
			for _, pi := range perm[:plen] {
				path = append(path, links[pi])
			}
			paths[i] = path
			flows[i] = net.StartFlow("f", 1e12, path, nil) // effectively infinite
		}
		eng.RunUntil(0.001)
		// Compute per-link allocated sums.
		alloc := make(map[*Link]float64)
		for i, f := range flows {
			for _, l := range paths[i] {
				alloc[l] += f.Rate()
			}
		}
		for i, f := range flows {
			if f.Rate() <= 0 {
				return false
			}
			hasBottleneck := false
			for _, l := range paths[i] {
				saturated := almostEqual(alloc[l], l.Capacity(), 1e-6*l.Capacity())
				if !saturated {
					continue
				}
				maximal := true
				for j, g := range flows {
					if j == i {
						continue
					}
					for _, gl := range paths[j] {
						if gl == l && g.Rate() > f.Rate()+1e-9 {
							maximal = false
						}
					}
				}
				if maximal {
					hasBottleneck = true
					break
				}
			}
			if !hasBottleneck {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — identical schedules produce identical
// completion sequences.
func TestFabricDeterminismProperty(t *testing.T) {
	run := func(seed int64) []sim.Time {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		net := NewNetwork(eng)
		links := make([]*Link, 4)
		for i := range links {
			links[i] = net.NewLink(fmt.Sprintf("l%d", i), "test", 100+float64(i)*50, float64(i)*1e-3)
		}
		var completions []sim.Time
		for i := 0; i < 20; i++ {
			path := []*Link{links[rng.Intn(4)], links[rng.Intn(4)]}
			if path[0] == path[1] {
				path = path[:1]
			}
			size := 1 + rng.Float64()*1000
			at := rng.Float64()
			eng.At(at, func() {
				net.StartFlow("f", size, path, func(f *Flow) {
					completions = append(completions, eng.Now())
				})
			})
		}
		eng.Run()
		return completions
	}
	prop := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChainedFlowsViaCallbacks(t *testing.T) {
	// Completion callbacks that start new flows model dependent transfer
	// stages (e.g. NIC->CPU then CPU->GPU); verify timing composes.
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	nic := net.NewLink("nic", "nic", 25, 0)
	pcie := net.NewLink("pcie", "pcie", 64, 0)
	var doneAt sim.Time
	net.StartFlow("stage1", 100, []*Link{nic}, func(f *Flow) {
		net.StartFlow("stage2", 100, []*Link{pcie}, func(f *Flow) {
			doneAt = eng.Now()
		})
	})
	eng.Run()
	want := 100.0/25 + 100.0/64
	if !almostEqual(doneAt, want, 1e-9) {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

func TestFlowEfficiencySemantics(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	var doneAt sim.Time
	f := net.StartFlowEff("half", 100, 0.5, []*Link{l}, func(*Flow) { doneAt = eng.Now() })
	eng.RunUntil(0.5)
	// The flow reserves the full link share but delivers at half rate.
	if !almostEqual(f.Rate(), 100, 1e-9) || !almostEqual(f.Goodput(), 50, 1e-9) {
		t.Fatalf("rate=%v goodput=%v", f.Rate(), f.Goodput())
	}
	eng.Run()
	if !almostEqual(doneAt, 2, 1e-9) {
		t.Fatalf("done at %v, want 2 (100 bytes at 50 B/s)", doneAt)
	}
	net.Sync()
	// Carried bytes account goodput; busy time accounts the reservation.
	if !almostEqual(l.CarriedBytes(), 100, 1e-6) {
		t.Fatalf("carried %v, want 100", l.CarriedBytes())
	}
	if !almostEqual(l.BusySeconds(), 2, 1e-9) {
		t.Fatalf("busy %v, want 2", l.BusySeconds())
	}
}

func TestFlowEfficiencyValidation(t *testing.T) {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	l := net.NewLink("l", "test", 100, 0)
	for _, eff := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("eff=%v accepted", eff)
				}
			}()
			net.StartFlowEff("bad", 10, eff, []*Link{l}, nil)
		}()
	}
}

// Property: halving a flow's efficiency exactly doubles its solo
// completion time (above the latency floor).
func TestEfficiencyScalingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Float64()*1e6
		eff := 0.1 + 0.4*rng.Float64()
		run := func(e float64) sim.Time {
			eng := sim.NewEngine()
			net := NewNetwork(eng)
			l := net.NewLink("l", "test", 1e6, 0)
			var done sim.Time
			net.StartFlowEff("f", size, e, []*Link{l}, func(*Flow) { done = eng.Now() })
			eng.Run()
			return done
		}
		t1, t2 := run(eff), run(eff/2)
		return almostEqual(t2, 2*t1, 1e-9*(1+t1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
