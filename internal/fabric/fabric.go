// Package fabric implements a flow-level network simulator with max-min
// fair bandwidth sharing.
//
// The model is the classic fluid approximation used in flow-level
// simulators: a Flow carries a fixed number of bytes across an ordered
// path of directed Links; at every instant, the set of active flows is
// assigned rates by progressive filling (max-min fairness); rates only
// change when a flow starts or finishes, so the simulation advances in
// O(flow events) rather than O(packets).
//
// Max-min fairness is the right abstraction for this repository: both
// NVLink/NVSwitch traffic and RDMA traffic on a congestion-controlled
// fabric converge to approximately fair shares per flow, and every
// contention effect the Janus paper reports (egress hot-spots when all
// workers pull from the same GPU, PCIe-switch bottlenecks, NIC sharing
// between GPU pairs) is reproduced by fair sharing on the real link
// graph.
//
// Determinism: flows and links are kept in insertion-ordered slices and
// all iteration is over those slices, never over maps, so a given
// sequence of StartFlow calls always produces the identical timeline.
package fabric

import (
	"fmt"
	"math"

	"janus/internal/sim"
)

// completionEps is the residual byte count below which a flow is
// considered finished. Rates are up to ~1e12 B/s and event times carry
// ~15 significant digits, so residuals from float cancellation are far
// below one byte; 1e-3 bytes is a safe threshold.
const completionEps = 1e-3

// Link is a directed, fixed-capacity network resource.
type Link struct {
	name     string
	capacity float64 // bytes per second
	latency  float64 // seconds, charged once per flow traversing the link
	class    string  // free-form label used for traffic accounting

	index   int
	carried float64 // total bytes carried (integrated)
	busyInt float64 // ∫ allocated-rate dt, for utilization accounting

	// scratch fields used during rate computation
	nActive  int
	residual float64
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Class returns the traffic-accounting class assigned at creation.
func (l *Link) Class() string { return l.class }

// Capacity returns the link capacity in bytes per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Latency returns the per-flow latency in seconds.
func (l *Link) Latency() float64 { return l.latency }

// CarriedBytes returns the total bytes the link has carried, integrated
// up to the last Sync or network event.
func (l *Link) CarriedBytes() float64 { return l.carried }

// BusySeconds returns the capacity-normalised busy time: the integral of
// allocated rate over time divided by capacity. A link saturated for 2s
// reports 2.0 regardless of how many flows shared it.
func (l *Link) BusySeconds() float64 {
	if l.capacity == 0 {
		return 0
	}
	return l.busyInt / l.capacity
}

// Flow is a transfer of a fixed number of bytes across a path of links.
type Flow struct {
	name       string
	size       float64
	remaining  float64
	path       []*Link
	rate       float64
	eff        float64  // goodput fraction of the allocated rate
	started    sim.Time // when StartFlow was called
	activated  sim.Time // when the latency elapsed and bandwidth use began
	finished   sim.Time
	active     bool
	done       bool
	onComplete func(*Flow)
	net        *Network
}

// Name returns the flow's name.
func (f *Flow) Name() string { return f.name }

// Size returns the total size in bytes.
func (f *Flow) Size() float64 { return f.size }

// Remaining returns the bytes not yet delivered (as of the last network
// event or Sync).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the currently allocated rate in bytes per second.
func (f *Flow) Rate() float64 { return f.rate }

// Goodput returns the current delivery rate: allocated rate times the
// flow's protocol efficiency.
func (f *Flow) Goodput() float64 { return f.rate * f.eff }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// StartedAt returns the virtual time StartFlow was called.
func (f *Flow) StartedAt() sim.Time { return f.started }

// FinishedAt returns the completion time; valid only once Done.
func (f *Flow) FinishedAt() sim.Time { return f.finished }

// Network owns links and active flows and drives the fluid model.
type Network struct {
	eng    *sim.Engine
	links  []*Link
	active []*Flow // insertion-ordered; holds only activated, unfinished flows

	lastAdvance sim.Time
	nextEv      *sim.Event

	// OnFlowDone, if set, is invoked for every completed flow after its
	// own onComplete callback. Used by the metrics recorder.
	OnFlowDone func(*Flow)
}

// NewNetwork returns an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng}
}

// Engine returns the simulation engine the network is bound to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Links returns all links in creation order. The slice is shared; do not
// modify it.
func (n *Network) Links() []*Link { return n.links }

// ActiveFlows returns the number of flows currently consuming bandwidth.
func (n *Network) ActiveFlows() int { return len(n.active) }

// NewLink creates a directed link. class is a free-form label ("nvlink",
// "nic", "pcie", ...) used by traffic accounting.
func (n *Network) NewLink(name, class string, capacityBps, latency float64) *Link {
	if capacityBps <= 0 {
		panic(fmt.Sprintf("fabric: link %q capacity must be positive, got %v", name, capacityBps))
	}
	l := &Link{name: name, class: class, capacity: capacityBps, latency: latency, index: len(n.links)}
	n.links = append(n.links, l)
	return l
}

// StartFlow begins a transfer of size bytes along path. The flow first
// waits the sum of the path's latencies, then competes for bandwidth.
// onComplete (may be nil) fires when the last byte is delivered. A flow
// with an empty path or zero size completes after the latency alone.
// The returned Flow can be inspected but not cancelled (the training
// workloads in this repository never abort transfers).
func (n *Network) StartFlow(name string, size float64, path []*Link, onComplete func(*Flow)) *Flow {
	return n.StartFlowEff(name, size, 1, path, onComplete)
}

// StartFlowEff is StartFlow with an explicit protocol efficiency in
// (0, 1]: the flow's goodput is eff times its allocated max-min share,
// while the full share stays reserved on every link it crosses. This is
// how the model expresses transport inefficiency — a collective that
// reaches only a fraction of line rate (e.g. NCCL All-to-All, §3.1 of
// the Janus paper) keeps the links busy but delivers fewer bytes per
// second. Link CarriedBytes accounts goodput (delivered bytes);
// BusySeconds accounts the reservation.
func (n *Network) StartFlowEff(name string, size, eff float64, path []*Link, onComplete func(*Flow)) *Flow {
	if size < 0 || math.IsNaN(size) || math.IsInf(size, 0) {
		panic(fmt.Sprintf("fabric: flow %q has invalid size %v", name, size))
	}
	if eff <= 0 || eff > 1 || math.IsNaN(eff) {
		panic(fmt.Sprintf("fabric: flow %q has invalid efficiency %v", name, eff))
	}
	f := &Flow{
		name:       name,
		size:       size,
		remaining:  size,
		eff:        eff,
		path:       path,
		started:    n.eng.Now(),
		onComplete: onComplete,
		net:        n,
	}
	var lat float64
	for _, l := range path {
		lat += l.latency
	}
	if size <= 0 || len(path) == 0 {
		// Pure-latency flow (control message, local no-op copy).
		n.eng.After(lat, func() { n.finish(f) })
		return f
	}
	n.eng.After(lat, func() {
		f.active = true
		f.activated = n.eng.Now()
		n.advance()
		n.active = append(n.active, f)
		n.reallocate()
	})
	return f
}

// Sync integrates byte and utilization accounting up to the current
// virtual time. Call before reading CarriedBytes/BusySeconds mid-run.
func (n *Network) Sync() { n.advance() }

// advance integrates flow progress and link accounting from lastAdvance
// to now at the currently allocated rates.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := now - n.lastAdvance
	if dt <= 0 {
		n.lastAdvance = now
		return
	}
	for _, f := range n.active {
		moved := f.rate * f.eff * dt
		f.remaining -= moved
		if f.remaining < 0 {
			f.remaining = 0
		}
		for _, l := range f.path {
			l.carried += moved
			l.busyInt += f.rate * dt
		}
	}
	n.lastAdvance = now
}

// reallocate recomputes max-min fair rates for all active flows by
// progressive filling and reschedules the next completion event.
func (n *Network) reallocate() {
	// Reset per-link scratch state for links touched by active flows.
	for _, f := range n.active {
		for _, l := range f.path {
			l.nActive = 0
			l.residual = l.capacity
		}
	}
	for _, f := range n.active {
		f.rate = 0
		for _, l := range f.path {
			l.nActive++
		}
	}
	unfrozen := len(n.active)
	frozen := make([]bool, len(n.active))
	for unfrozen > 0 {
		// Find the bottleneck: the link with the smallest fair share
		// among links carrying unfrozen flows. Iterating active flows'
		// paths in order keeps the choice deterministic.
		share := math.Inf(1)
		var bottleneck *Link
		for _, f := range n.active {
			for _, l := range f.path {
				if l.nActive == 0 {
					continue
				}
				s := l.residual / float64(l.nActive)
				if s < share {
					share = s
					bottleneck = l
				}
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at the
		// bottleneck's fair share.
		for i, f := range n.active {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, l := range f.path {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			frozen[i] = true
			unfrozen--
			f.rate = share
			for _, l := range f.path {
				l.residual -= share
				if l.residual < 0 {
					l.residual = 0
				}
				l.nActive--
			}
		}
	}
	n.scheduleNextCompletion()
}

func (n *Network) scheduleNextCompletion() {
	if n.nextEv != nil {
		n.eng.Cancel(n.nextEv)
		n.nextEv = nil
	}
	next := math.Inf(1)
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / (f.rate * f.eff)
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		if len(n.active) > 0 {
			// Active flows with zero rate can only happen if a link has
			// zero residual with no sharers, which progressive filling
			// never produces. Guard against silent deadlock anyway.
			panic("fabric: active flows but no completion schedulable")
		}
		return
	}
	if next < 0 {
		next = 0
	}
	n.nextEv = n.eng.After(next, n.onCompletionEvent)
}

func (n *Network) onCompletionEvent() {
	n.nextEv = nil
	n.advance()
	// Collect finished flows in insertion order, then compact the
	// active list.
	var finished []*Flow
	keep := n.active[:0]
	for _, f := range n.active {
		if f.remaining <= completionEps {
			f.remaining = 0
			finished = append(finished, f)
		} else {
			keep = append(keep, f)
		}
	}
	n.active = keep
	n.reallocate()
	for _, f := range finished {
		n.finish(f)
	}
}

func (n *Network) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.active = false
	f.rate = 0
	f.finished = n.eng.Now()
	if f.onComplete != nil {
		f.onComplete(f)
	}
	if n.OnFlowDone != nil {
		n.OnFlowDone(f)
	}
}
