// Package fabric implements a flow-level network simulator with max-min
// fair bandwidth sharing.
//
// The model is the classic fluid approximation used in flow-level
// simulators: a Flow carries a fixed number of bytes across an ordered
// path of directed Links; at every instant, the set of active flows is
// assigned rates by progressive filling (max-min fairness); rates only
// change when a flow starts or finishes, so the simulation advances in
// O(flow events) rather than O(packets).
//
// Max-min fairness is the right abstraction for this repository: both
// NVLink/NVSwitch traffic and RDMA traffic on a congestion-controlled
// fabric converge to approximately fair shares per flow, and every
// contention effect the Janus paper reports (egress hot-spots when all
// workers pull from the same GPU, PCIe-switch bottlenecks, NIC sharing
// between GPU pairs) is reproduced by fair sharing on the real link
// graph.
//
// Determinism: flows and links carry explicit activation ordinals and
// all iteration is over ord-ordered slices, never over maps, so a given
// sequence of StartFlow/StartFlows calls always produces the identical
// timeline.
//
// Performance: rate recomputation ("settling") is batched — any number
// of arrivals and completions at one virtual instant trigger a single
// settle — and, in the default ModeIncremental, restricted to the
// connected component of links and flows actually perturbed. Flow and
// link byte accounting is anchor-based (see alloc.go), so nothing is
// integrated eagerly per event; completions are tracked in a min-heap of
// exact predicted finish times. ModeOracle retains the original naive
// full-rescan progressive filling as an in-package reference; the two
// modes produce bit-identical results (rates, completion times, link
// utilization), which differential_test.go enforces on seeded random
// workloads.
package fabric

import (
	"fmt"
	"math"

	"janus/internal/sim"
)

// AllocMode selects the allocator implementation. Both modes compute
// exactly the same floats; ModeOracle exists as the trusted reference
// for differential testing and costs O(rounds·flows·pathlen) per settle.
type AllocMode int

const (
	// ModeIncremental recomputes only the connected component of
	// links/flows perturbed by the arrivals/completions being settled,
	// selecting bottlenecks through a share-keyed heap. Default.
	ModeIncremental AllocMode = iota
	// ModeOracle recomputes every active flow by naive progressive
	// filling with full rescans, exactly as the original implementation.
	ModeOracle
	// ModeHierarchical partitions the links into edge domains and a
	// trunk core (see MarkTrunk) and settles only the domains whose
	// bottleneck levels actually change, coupling them through cached
	// per-link levels and expanding the scope to the exact max-min
	// fixpoint. Bit-identical to ModeIncremental (see hier.go).
	ModeHierarchical
)

// Link is a directed, fixed-capacity network resource.
type Link struct {
	name     string
	capacity float64 // bytes per second
	latency  float64 // seconds, charged once per flow traversing the link
	class    string  // free-form label used for traffic accounting

	index int
	net   *Network

	// flows crossing this link right now (activated, unfinished), in
	// arrival order perturbed by swap-removal on completion. The order
	// is itself deterministic (same event sequence => same order), and
	// identical across alloc modes, which is all bit-identity needs.
	flows []linkRef

	// Lazily synced accounting. carried/busyInt integrate delivered
	// bytes and allocated rate up to lastSync; the current regime
	// (sumRate/sumGoodput, constant between rate changes) extends them
	// to any later read point. A link is synced only when its sums
	// change bitwise, so both alloc modes sync at identical instants
	// with identical values.
	carried    float64
	busyInt    float64
	lastSync   sim.Time
	sumRate    float64
	sumGoodput float64

	// settle scratch (see alloc.go). hpos/hshare are the link's slot and
	// cached key in the hierarchical fill's indexed bottleneck heap
	// (hier.go); hpos is -1 while the link is not in the heap.
	nActive  int
	residual float64
	compGen  uint64
	allocVer uint32
	pushVer  uint32
	hpos     int32
	hshare   float64

	// prof is the trunk link's freeze profile: the committed rates of
	// its crossing flows, sorted (rate, ord). It is the "macro-flow"
	// aggregate the hierarchical settle replays instead of enumerating
	// an in-scope trunk's mostly-unperturbed population (see hier.go).
	// Maintained only under ModeHierarchical, only on trunk links.
	prof []profEntry

	// hierarchical-mode state (see hier.go). level/levelSel are the
	// committed bottleneck-level cache: the share at which this link was
	// last selected as a bottleneck (or tied a bottleneck layer) and
	// froze — or would have frozen — its flows, valid only while
	// levelSel (a never-selected link freezes nobody and exerts no
	// external pressure). popRes/popN snapshot the link's residual
	// capacity and unfrozen-flow count at that pop, so a later settle
	// can replay the link's in-layer drift without rescoping it.
	// newLevel/hierSel/newPopRes/newPopN are per-fill scratch.
	trunk     bool
	level     float64
	levelSel  bool
	popRes    float64
	popN      int32
	newLevel  float64
	hierSel   bool
	newPopRes float64
	newPopN   int32

	// Cap-source scratch for the counting layout of a fill attempt's
	// event stream (see hierFill): generation tag, entry count and
	// scatter cursor for this link's bucket of sourced cap events.
	srcGen  uint64
	srcCnt  int32
	srcSlot int32
}

// linkRef locates a flow on a link together with the index of this link
// in the flow's path, so swap-removal can fix the flow's back-pointer.
type linkRef struct {
	f       *Flow
	pathIdx int
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// MarkTrunk declares this link part of the shared trunk core for
// ModeHierarchical's domain partition: flows crossing a trunk link do
// not merge the edge domains they touch — the domains couple only
// through the trunk's cached bottleneck level (the per-trunk aggregate
// the settle validates). Call before starting flows over the link; the
// mark is inert in every other alloc mode. Returns l for chaining.
func (l *Link) MarkTrunk() *Link {
	l.trunk = true
	// Defensive: if flows already settled over this link, seed the
	// freeze profile so the invariant "every committed crossing flow of
	// a trunk is in its profile" holds from here on.
	for _, ref := range l.flows {
		if ref.f.profOn {
			l.profIns(ref.f.rate, ref.f)
		}
	}
	return l
}

// IsTrunk reports whether MarkTrunk was called.
func (l *Link) IsTrunk() bool { return l.trunk }

// Class returns the traffic-accounting class assigned at creation.
func (l *Link) Class() string { return l.class }

// Capacity returns the link capacity in bytes per second.
func (l *Link) Capacity() float64 { return l.capacity }

// Latency returns the per-flow latency in seconds.
func (l *Link) Latency() float64 { return l.latency }

// CarriedBytes returns the total bytes the link has carried up to the
// current virtual time.
func (l *Link) CarriedBytes() float64 {
	return l.carried + l.sumGoodput*(l.net.eng.Now()-l.lastSync)
}

// BusySeconds returns the capacity-normalised busy time: the integral of
// allocated rate over time divided by capacity. A link saturated for 2s
// reports 2.0 regardless of how many flows shared it.
func (l *Link) BusySeconds() float64 {
	if l.capacity == 0 {
		return 0
	}
	return (l.busyInt + l.sumRate*(l.net.eng.Now()-l.lastSync)) / l.capacity
}

// Flow is a transfer of a fixed number of bytes across a path of links.
type Flow struct {
	name       string
	size       float64
	path       []*Link
	eff        float64  // goodput fraction of the allocated rate
	started    sim.Time // when StartFlow was called
	activated  sim.Time // when the latency elapsed and bandwidth use began
	finished   sim.Time
	active     bool
	done       bool
	onComplete func(*Flow)
	net        *Network

	ord       uint64 // activation ordinal; all deterministic iteration keys off it
	rate      float64
	goodput   float64 // rate * eff, cached
	remaining float64 // valid only while not active (pre-activation size, post-completion residue)

	// Anchor accounting: while active, the delivered-byte state is
	// remaining(t) = anchorRem - goodput*(t-anchorAt). The anchor moves
	// only when the flow's rate changes bitwise, so eager and lazy
	// evaluation produce the same floats.
	anchorAt  sim.Time
	anchorRem float64
	finishAt  sim.Time // anchorAt + anchorRem/goodput, exact predicted completion

	heapIdx   int   // index in Network.fheap, -1 when not queued
	posInLink []int // posInLink[i] = index of this flow in path[i].flows

	// settle scratch (see alloc.go); hierCap/hierCapIdx/hierBoundary
	// are the hierarchical mode's boundary classification (see hier.go):
	// the (level, index) of the minimum selected external link, the
	// flow's external demand cap.
	compGen      uint64
	newRate      float64
	frozen       bool
	hierCap      float64
	hierCapIdx   int
	hierCapL     *Link
	hierBoundary bool
	// profOn marks that this flow's committed rate is recorded in the
	// freeze profile of every trunk link on its path; phGen marks it as
	// a phantom of the current fill attempt (see hier.go).
	profOn bool
	phGen  uint64
}

// Name returns the flow's name.
func (f *Flow) Name() string { return f.name }

// Size returns the total size in bytes.
func (f *Flow) Size() float64 { return f.size }

// Remaining returns the bytes not yet delivered as of the current
// virtual time.
func (f *Flow) Remaining() float64 {
	if !f.active {
		return f.remaining
	}
	rem := f.anchorRem - f.goodput*(f.net.eng.Now()-f.anchorAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Rate returns the currently allocated rate in bytes per second.
func (f *Flow) Rate() float64 { return f.rate }

// Goodput returns the current delivery rate: allocated rate times the
// flow's protocol efficiency.
func (f *Flow) Goodput() float64 { return f.rate * f.eff }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// StartedAt returns the virtual time StartFlow was called.
func (f *Flow) StartedAt() sim.Time { return f.started }

// FinishedAt returns the completion time; valid only once Done.
func (f *Flow) FinishedAt() sim.Time { return f.finished }

// FlowSpec describes one flow for batched admission via StartFlows.
type FlowSpec struct {
	Name       string
	Size       float64 // bytes; <= 0 means a pure-latency flow
	Eff        float64 // protocol efficiency in (0,1]; 0 defaults to 1
	Path       []*Link
	OnComplete func(*Flow) // may be nil
}

// Network owns links and active flows and drives the fluid model.
type Network struct {
	eng   *sim.Engine
	links []*Link
	mode  AllocMode
	fill  FillStrategy

	// active holds activated, unfinished flows in ord order. Completed
	// flows are compacted out lazily (the incremental allocator never
	// scans this slice; the oracle compacts before each settle).
	active  []*Flow
	nActive int // live flow count (excludes compacted-out dead entries)
	nDead   int // dead entries still occupying active
	ordCtr  uint64

	// settle batching: all arrivals/completions at one instant mark
	// trigger links and are resolved by a single settle event.
	settlePending bool
	trigLinks     []*Link
	pendingDone   []*Flow

	// completion tracking: min-heap keyed (finishAt, ord) plus the one
	// scheduled engine event for the heap minimum.
	fheap  []*Flow
	nextEv *sim.Event
	nextAt sim.Time

	// settle scratch, reused across settles (see alloc.go)
	compGen    uint64
	scopeFlows []*Flow
	scopeLinks []*Link
	bfsQueue   []*Link
	lheap      []linkEntry

	// hierarchical-mode state (see hier.go): a monotone union-find over
	// link indices partitioning non-trunk links into edge domains (with
	// per-root member lists), domain scope marks, the boundary-flow cap
	// heap, and the expansion scratch of the fixpoint iteration.
	dsuParent     []int32
	dsuSize       []int32
	domNext       []int32
	domTail       []int32
	domMark       []uint64
	domMarkGen    uint64
	domList       []int32
	capHeap       []capEntry
	capArr        []capEntry
	capSent       []capEntry
	capSrcs       []*Link
	srcKeys       []srcKey
	growLinks     []*Link
	growTrunks    []*Link
	hierMut       []linkMut
	hheap         []*Link
	hierMemoMap   map[uint64][]int32
	hierRestarts  uint64
	hierFallbacks uint64

	// OnFlowDone, if set, is invoked for every completed flow after its
	// own onComplete callback. Used by the metrics recorder.
	OnFlowDone func(*Flow)
}

// NewNetwork returns an empty network bound to eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng}
}

// Engine returns the simulation engine the network is bound to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Links returns all links in creation order. The slice is shared; do not
// modify it.
func (n *Network) Links() []*Link { return n.links }

// ActiveFlows returns the number of flows currently consuming bandwidth.
func (n *Network) ActiveFlows() int { return n.nActive }

// SetAllocMode selects the allocator implementation. Must be called
// before any flow is started; all modes produce bit-identical results,
// so this only matters for performance (and for differential tests).
func (n *Network) SetAllocMode(m AllocMode) { n.mode = m }

// AllocModeSelected returns the allocator implementation in use.
func (n *Network) AllocModeSelected() AllocMode { return n.mode }

// FillStrategy selects how the incremental allocator picks bottleneck
// links within a settle. Every strategy computes bit-identical rates
// (the bottleneck is always the lexicographic (share, scanRank)
// minimum); they differ only in cost shape.
type FillStrategy int

const (
	// FillAdaptive (default) scans dense components — where flows
	// outnumber links and the heap would churn an entry per (flow,
	// path-link) freeze — and uses the heap for sparse, link-heavy ones.
	FillAdaptive FillStrategy = iota
	// FillScan always rescans the component's links per fill round.
	FillScan
	// FillHeap always uses the (share, link index)-keyed lazy min-heap.
	FillHeap
)

// SetFillStrategy overrides the incremental fill's bottleneck-selection
// strategy (differential tests pin each variant; production code keeps
// the adaptive default).
func (n *Network) SetFillStrategy(s FillStrategy) { n.fill = s }

// NewLink creates a directed link. class is a free-form label ("nvlink",
// "nic", "pcie", ...) used by traffic accounting.
func (n *Network) NewLink(name, class string, capacityBps, latency float64) *Link {
	if capacityBps <= 0 {
		panic(fmt.Sprintf("fabric: link %q capacity must be positive, got %v", name, capacityBps))
	}
	l := &Link{name: name, class: class, capacity: capacityBps, latency: latency, index: len(n.links), net: n, level: math.Inf(1)}
	n.links = append(n.links, l)
	return l
}

// StartFlow begins a transfer of size bytes along path. The flow first
// waits the sum of the path's latencies, then competes for bandwidth.
// onComplete (may be nil) fires when the last byte is delivered. A flow
// with an empty path or zero size completes after the latency alone.
// The returned Flow can be inspected but not cancelled (the training
// workloads in this repository never abort transfers).
func (n *Network) StartFlow(name string, size float64, path []*Link, onComplete func(*Flow)) *Flow {
	return n.StartFlowEff(name, size, 1, path, onComplete)
}

// StartFlowEff is StartFlow with an explicit protocol efficiency in
// (0, 1]: the flow's goodput is eff times its allocated max-min share,
// while the full share stays reserved on every link it crosses. This is
// how the model expresses transport inefficiency — a collective that
// reaches only a fraction of line rate (e.g. NCCL All-to-All, §3.1 of
// the Janus paper) keeps the links busy but delivers fewer bytes per
// second. Link CarriedBytes accounts goodput (delivered bytes);
// BusySeconds accounts the reservation.
func (n *Network) StartFlowEff(name string, size, eff float64, path []*Link, onComplete func(*Flow)) *Flow {
	f := n.newFlow(FlowSpec{Name: name, Size: size, Eff: eff, Path: path, OnComplete: onComplete})
	lat := pathLatency(path)
	if size <= 0 || len(path) == 0 {
		// Pure-latency flow (control message, local no-op copy).
		n.eng.After(lat, func() { n.finish(f) })
		return f
	}
	n.eng.After(lat, func() { n.activate([]*Flow{f}) })
	return f
}

// StartFlows admits a batch of flows in one call. All flows sharing the
// same path latency activate in a single event and are settled by one
// rate recomputation, so an All-to-All wave of n(n-1) flows costs one
// reallocation instead of n(n-1). Specs are admitted in slice order;
// the returned flows are in the same order.
func (n *Network) StartFlows(specs []FlowSpec) []*Flow {
	flows := make([]*Flow, len(specs))
	// Group bandwidth flows by activation latency, preserving first-seen
	// order of distinct latencies so event seq order is deterministic.
	var lats []float64
	var groups [][]*Flow
	for i, sp := range specs {
		if sp.Eff == 0 {
			sp.Eff = 1
		}
		f := n.newFlow(sp)
		flows[i] = f
		lat := pathLatency(sp.Path)
		if sp.Size <= 0 || len(sp.Path) == 0 {
			n.eng.After(lat, func() { n.finish(f) })
			continue
		}
		gi := -1
		for j, l := range lats {
			if l == lat {
				gi = j
				break
			}
		}
		if gi < 0 {
			lats = append(lats, lat)
			groups = append(groups, nil)
			gi = len(lats) - 1
		}
		groups[gi] = append(groups[gi], f)
	}
	for gi, g := range groups {
		g := g
		n.eng.After(lats[gi], func() { n.activate(g) })
	}
	return flows
}

func (n *Network) newFlow(sp FlowSpec) *Flow {
	eff := sp.Eff
	if sp.Size < 0 || math.IsNaN(sp.Size) || math.IsInf(sp.Size, 0) {
		panic(fmt.Sprintf("fabric: flow %q has invalid size %v", sp.Name, sp.Size))
	}
	if eff <= 0 || eff > 1 || math.IsNaN(eff) {
		panic(fmt.Sprintf("fabric: flow %q has invalid efficiency %v", sp.Name, eff))
	}
	return &Flow{
		name:       sp.Name,
		size:       sp.Size,
		remaining:  sp.Size,
		eff:        eff,
		path:       sp.Path,
		started:    n.eng.Now(),
		onComplete: sp.OnComplete,
		net:        n,
		heapIdx:    -1,
	}
}

func pathLatency(path []*Link) float64 {
	var lat float64
	for _, l := range path {
		lat += l.latency
	}
	return lat
}

// activate inserts a batch of latency-elapsed flows into the fluid model
// and requests a settle. Flows start at rate zero; the settle at this
// same instant assigns their first max-min share.
func (n *Network) activate(batch []*Flow) {
	now := n.eng.Now()
	if n.mode == ModeHierarchical {
		n.ensureHier()
		for _, f := range batch {
			n.unionDomains(f.path)
		}
	}
	for _, f := range batch {
		f.active = true
		f.activated = now
		f.ord = n.ordCtr
		n.ordCtr++
		f.anchorAt = now
		f.anchorRem = f.size
		f.posInLink = make([]int, len(f.path))
		for i, l := range f.path {
			f.posInLink[i] = len(l.flows)
			l.flows = append(l.flows, linkRef{f: f, pathIdx: i})
			n.trigLinks = append(n.trigLinks, l)
		}
		n.active = append(n.active, f)
		n.nActive++
	}
	n.ensureSettle()
}

// onCompletionEvent fires at the exact predicted finish time of the
// completion-heap minimum. It retires every flow whose finish time has
// arrived and requests a settle; completion callbacks run at the end of
// that settle, after rates are consistent again.
func (n *Network) onCompletionEvent() {
	n.nextEv = nil
	now := n.eng.Now()
	for len(n.fheap) > 0 && n.fheap[0].finishAt <= now {
		f := n.popCompletion()
		f.active = false
		if f.profOn {
			for _, l := range f.path {
				if l.trunk {
					l.profDel(f.rate, f.ord)
				}
			}
			f.profOn = false
		}
		f.rate = 0
		f.goodput = 0
		f.remaining = 0
		n.removeFromLinks(f)
		for _, l := range f.path {
			n.trigLinks = append(n.trigLinks, l)
		}
		n.nActive--
		n.nDead++
		n.pendingDone = append(n.pendingDone, f)
	}
	if len(n.pendingDone) > 0 {
		n.ensureSettle()
	}
}

// removeFromLinks swap-removes f from every link on its path, fixing the
// displaced flow's back-pointer. The resulting link-list orders depend
// only on the event sequence, so they are identical across alloc modes.
func (n *Network) removeFromLinks(f *Flow) {
	for i, l := range f.path {
		pos := f.posInLink[i]
		last := len(l.flows) - 1
		moved := l.flows[last]
		l.flows[pos] = moved
		moved.f.posInLink[moved.pathIdx] = pos
		l.flows[last] = linkRef{}
		l.flows = l.flows[:last]
	}
}

// ensureSettle schedules the single settle event for the current instant
// if one is not already pending. After(0) gets the largest seq at this
// instant, so every already-queued same-time arrival/completion fires
// first and is folded into the one settle.
func (n *Network) ensureSettle() {
	if n.settlePending {
		return
	}
	n.settlePending = true
	n.eng.After(0, n.settle)
}

// compact removes completed flows from the ord-ordered active slice.
func (n *Network) compact() {
	if n.nDead == 0 {
		return
	}
	keep := n.active[:0]
	for _, f := range n.active {
		if f.active {
			keep = append(keep, f)
		}
	}
	for i := len(keep); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = keep
	n.nDead = 0
}

func (n *Network) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.active = false
	f.rate = 0
	f.goodput = 0
	f.finished = n.eng.Now()
	if f.onComplete != nil {
		f.onComplete(f)
	}
	if n.OnFlowDone != nil {
		n.OnFlowDone(f)
	}
}

// Sync is a no-op kept for API compatibility: accounting is anchor-based
// and CarriedBytes/BusySeconds/Remaining integrate on demand, so there
// is nothing to flush.
func (n *Network) Sync() {}
