package fabric

import (
	"fmt"
	"testing"

	"janus/internal/sim"
)

// benchFatTree builds a two-tier topology: machines with an up and a
// down link each, joined through one core link per machine pair's hash
// (a small core trunk set), the shape the simulator's All-to-All load
// puts on a cluster.
type benchTopo struct {
	eng  *sim.Engine
	net  *Network
	up   []*Link
	down []*Link
	core []*Link
}

func newBenchTopo(machines, trunks int, mode AllocMode) *benchTopo {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	net.SetAllocMode(mode)
	t := &benchTopo{eng: eng, net: net}
	for m := 0; m < machines; m++ {
		t.up = append(t.up, net.NewLink(fmt.Sprintf("up%d", m), "nic", 1e10, 0))
		t.down = append(t.down, net.NewLink(fmt.Sprintf("down%d", m), "nic", 1e10, 0))
	}
	for c := 0; c < trunks; c++ {
		t.core = append(t.core, net.NewLink(fmt.Sprintf("core%d", c), "core", 4e10, 0).MarkTrunk())
	}
	return t
}

// allToAllSpecs builds one full All-to-All shuffle: every ordered
// machine pair sends one flow through src-up, a trunk, and dst-down.
// Sizes are skewed per pair (like real token routing imbalance), so
// completions stagger and every one forces a reallocation — the
// settle-heavy regime the incremental allocator is built for.
func (t *benchTopo) allToAllSpecs(round int, size float64) []FlowSpec {
	var specs []FlowSpec
	n := len(t.up)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			specs = append(specs, FlowSpec{
				Name: fmt.Sprintf("a2a.r%d.%d.%d", round, s, d),
				Size: size * (1 + 0.01*float64(s*n+d)),
				Path: []*Link{t.up[s], t.core[(s+d)%len(t.core)], t.down[d]},
			})
		}
	}
	return specs
}

// sparseA2ASpecs builds one sparse All-to-All round: each machine
// sends to `fanout` peers at quadratic strides (the hierarchical /
// 2-hop A2A shape large clusters actually run — dense pairwise flows
// stop being realistic past a few dozen machines). Sizes are skewed so
// completions stagger and every one forces a reallocation.
func (t *benchTopo) sparseA2ASpecs(round, fanout int, size float64) []FlowSpec {
	var specs []FlowSpec
	n := len(t.up)
	for s := 0; s < n; s++ {
		for k := 1; k <= fanout; k++ {
			d := (s + k*k) % n
			if d == s {
				d = (d + 1) % n
			}
			specs = append(specs, FlowSpec{
				Name: fmt.Sprintf("sa2a.r%d.%d.%d", round, s, k),
				Size: size * (1 + 0.01*float64((s+7*k)%97)),
				Path: []*Link{t.up[s], t.core[(s*fanout+k)%len(t.core)], t.down[d]},
			})
		}
	}
	return specs
}

// runRounds drives `rounds` back-to-back shuffles (each admitted when
// the previous drains) and runs the simulation dry.
func runRounds(t *benchTopo, rounds int, specsFor func(r int) []FlowSpec) {
	var kick func(r int)
	kick = func(r int) {
		if r == rounds {
			return
		}
		specs := specsFor(r)
		left := len(specs)
		for i := range specs {
			specs[i].OnComplete = func(*Flow) {
				left--
				if left == 0 {
					kick(r + 1)
				}
			}
		}
		t.net.StartFlows(specs)
	}
	kick(0)
	t.eng.Run()
}

// runA2ARounds is runRounds over the dense All-to-All shape.
func runA2ARounds(t *benchTopo, rounds int, size float64) {
	runRounds(t, rounds, func(r int) []FlowSpec { return t.allToAllSpecs(r, size) })
}

// benchmarkAllToAll measures a 32-machine All-to-All-heavy simulation
// in the given allocation mode. ModeOracle is the retained seed
// allocator (full rescans per settle), so the Incremental/Oracle ratio
// is the ISSUE 3 speedup figure.
func benchmarkAllToAll(b *testing.B, machines int, mode AllocMode) {
	b.ReportAllocs()
	b.ReportMetric(float64(machines), "machines")
	for i := 0; i < b.N; i++ {
		t := newBenchTopo(machines, 8, mode)
		runA2ARounds(t, 4, 1e6)
	}
}

func BenchmarkAllToAll32Incremental(b *testing.B) { benchmarkAllToAll(b, 32, ModeIncremental) }
func BenchmarkAllToAll32Oracle(b *testing.B)      { benchmarkAllToAll(b, 32, ModeOracle) }

// benchmarkA2AScale is the scaling-curve workload: sparse All-to-All
// (8 peers per machine, the hierarchical shape) at 32–4096 machines,
// core trunks scaled with the cluster. The "machines" and "allocmode"
// metrics ride into BENCH_6.json so the curve is machine-readable per
// allocator; the Oracle allocator is deliberately absent at the large
// sizes — it is O(flows²) per settle and exists only as the 32-machine
// ratio baseline.
func benchmarkA2AScale(b *testing.B, machines int, mode AllocMode) {
	b.ReportAllocs()
	b.ReportMetric(float64(machines), "machines")
	b.ReportMetric(float64(mode), "allocmode")
	trunks := machines / 4
	if trunks < 8 {
		trunks = 8
	}
	for i := 0; i < b.N; i++ {
		t := newBenchTopo(machines, trunks, mode)
		runRounds(t, 2, func(r int) []FlowSpec { return t.sparseA2ASpecs(r, 8, 1e6) })
	}
}

func BenchmarkA2AScale32(b *testing.B)      { benchmarkA2AScale(b, 32, ModeIncremental) }
func BenchmarkA2AScale256(b *testing.B)     { benchmarkA2AScale(b, 256, ModeIncremental) }
func BenchmarkA2AScale32Hier(b *testing.B)  { benchmarkA2AScale(b, 32, ModeHierarchical) }
func BenchmarkA2AScale256Hier(b *testing.B) { benchmarkA2AScale(b, 256, ModeHierarchical) }

// BenchmarkA2AScale1024 is the incremental allocator's superlinear
// wall: ~8k staggered flows per round fused into one component by the
// shared trunks, ~20s per iteration, so the CI smoke tier (-short)
// keeps to 256 and `make bench` records the full curve.
func BenchmarkA2AScale1024(b *testing.B) {
	if testing.Short() {
		b.Skip("1024-machine A2A on the incremental allocator is ~20s/op; the -short curve tops out at 256")
	}
	benchmarkA2AScale(b, 1024, ModeIncremental)
}

// The hierarchical allocator's headline points: the same 1024-machine
// workload it must beat ≥100× (ISSUE 9), and the 4096-machine
// extension that should land within ~8× of the 1024 point
// (near-linear). Both are cheap enough to run in the -short CI smoke,
// which is how the scaling-curve artifact carries them.
func BenchmarkA2AScale1024Hier(b *testing.B) { benchmarkA2AScale(b, 1024, ModeHierarchical) }
func BenchmarkA2AScale4096Hier(b *testing.B) { benchmarkA2AScale(b, 4096, ModeHierarchical) }

// BenchmarkAllToAll32Seed reproduces the pre-optimization code path
// exactly: the naive allocator AND per-flow admission, each StartFlowEff
// triggering its own full reallocation — what every caller did before
// batched StartFlows existed. Incremental/Seed is the end-to-end
// speedup of this PR on the All-to-All-heavy workload.
func BenchmarkAllToAll32Seed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := newBenchTopo(32, 8, ModeOracle)
		var kick func(r int)
		kick = func(r int) {
			if r == 4 {
				return
			}
			specs := t.allToAllSpecs(r, 1e6)
			left := len(specs)
			done := func(*Flow) {
				left--
				if left == 0 {
					kick(r + 1)
				}
			}
			for _, sp := range specs {
				t.net.StartFlowEff(sp.Name, sp.Size, 1, sp.Path, done)
			}
		}
		kick(0)
		t.eng.Run()
	}
}

// benchmarkAdmission measures admitting `flows` flows in one batch and
// running the network dry — the admission + reallocation + completion
// pipeline end to end.
func benchmarkAdmission(b *testing.B, flows int, mode AllocMode) {
	benchmarkAdmissionAt(b, 32, flows, mode)
}

// benchmarkAdmissionAt is benchmarkAdmission on a machines-wide
// topology, for the scaling-curve variants below.
func benchmarkAdmissionAt(b *testing.B, machines, flows int, mode AllocMode) {
	b.ReportAllocs()
	b.ReportMetric(float64(machines), "machines")
	b.ReportMetric(float64(mode), "allocmode")
	for i := 0; i < b.N; i++ {
		t := newBenchTopo(machines, 8, mode)
		var specs []FlowSpec
		for f := 0; f < flows; f++ {
			s := f % machines
			d := (f + 1 + f/machines) % machines
			if d == s {
				d = (d + 1) % machines
			}
			specs = append(specs, FlowSpec{
				Name: fmt.Sprintf("f%d", f),
				Size: 1e6 + float64(f%7)*1e5,
				Path: []*Link{t.up[s], t.core[f%len(t.core)], t.down[d]},
			})
		}
		t.net.StartFlows(specs)
		t.eng.Run()
	}
}

func BenchmarkAdmission1kIncremental(b *testing.B)  { benchmarkAdmission(b, 1000, ModeIncremental) }
func BenchmarkAdmission1kOracle(b *testing.B)       { benchmarkAdmission(b, 1000, ModeOracle) }
func BenchmarkAdmission10kIncremental(b *testing.B) { benchmarkAdmission(b, 10000, ModeIncremental) }

// AdmissionScale admits one sparse-A2A wave (8 flows per machine) on a
// machines-wide topology — the scaling-curve companion to A2AScale.
// Incremental only: the Oracle allocator's O(flows²) settles are the
// reason the incremental one exists, and its curve is already pinned
// by the 1k/10k fixed-size pairs above.
func BenchmarkAdmissionScale256(b *testing.B) {
	benchmarkAdmissionAt(b, 256, 8*256, ModeIncremental)
}
func BenchmarkAdmissionScale1024(b *testing.B) {
	benchmarkAdmissionAt(b, 1024, 8*1024, ModeIncremental)
}
func BenchmarkAdmissionScale4096(b *testing.B) {
	benchmarkAdmissionAt(b, 4096, 8*4096, ModeIncremental)
}
func BenchmarkAdmissionScale1024Hier(b *testing.B) {
	benchmarkAdmissionAt(b, 1024, 8*1024, ModeHierarchical)
}
func BenchmarkAdmissionScale4096Hier(b *testing.B) {
	benchmarkAdmissionAt(b, 4096, 8*4096, ModeHierarchical)
}

// BenchmarkAdmission10kOracle is the seed allocator at 10k flows; it
// is quadratic-ish per settle, so -short (the CI smoke tier) skips it.
func BenchmarkAdmission10kOracle(b *testing.B) {
	if testing.Short() {
		b.Skip("seed allocator at 10k flows is slow; covered at 1k in -short")
	}
	benchmarkAdmission(b, 10000, ModeOracle)
}

// benchmarkReallocation stresses the settle path itself: a standing
// population of long flows keeps every link busy while short flows
// arrive and complete, forcing a reallocation each time. Only the
// affected component should be recomputed in incremental mode.
func benchmarkReallocation(b *testing.B, churn int, mode AllocMode) {
	b.ReportAllocs()
	machines := 32
	for i := 0; i < b.N; i++ {
		t := newBenchTopo(machines, 8, mode)
		// Standing load: one long flow per machine pair ring.
		var specs []FlowSpec
		for m := 0; m < machines; m++ {
			d := (m + 1) % machines
			specs = append(specs, FlowSpec{
				Name: fmt.Sprintf("standing%d", m),
				Size: 1e9,
				Path: []*Link{t.up[m], t.core[m%len(t.core)], t.down[d]},
			})
		}
		t.net.StartFlows(specs)
		// Churn: short flows admitted one at a time as each completes.
		var kick func(k int)
		kick = func(k int) {
			if k == churn {
				return
			}
			s := k % machines
			d := (k + machines/2) % machines
			t.net.StartFlows([]FlowSpec{{
				Name: fmt.Sprintf("churn%d", k),
				Size: 1e5,
				Path: []*Link{t.up[s], t.core[k%len(t.core)], t.down[d]},
				OnComplete: func(*Flow) {
					kick(k + 1)
				},
			}})
		}
		kick(0)
		t.eng.Run()
	}
}

func BenchmarkReallocation1kIncremental(b *testing.B) {
	benchmarkReallocation(b, 1000, ModeIncremental)
}
func BenchmarkReallocation1kOracle(b *testing.B) { benchmarkReallocation(b, 1000, ModeOracle) }
