//go:build race

package fabric

// raceEnabled gates the allocation-regression tests: the race runtime
// instruments allocations and clears pools differently, so the
// zero-alloc invariants are asserted only in the normal tier.
const raceEnabled = true
