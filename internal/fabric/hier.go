// Hierarchical allocation (ModeHierarchical). The incremental settle
// restricts the fill to the connected component of the perturbed links;
// once shared trunk links fuse the cluster into one component, that
// restriction is vacuous and every settle re-waterfills nearly the whole
// active flow population — the superlinear wall the 1024-machine scale
// benches hit. This file replaces the component closure with a two-level
// decomposition:
//
//   - The link set is partitioned into edge domains and a trunk core.
//     Flows that stay off the trunk (MarkTrunk) union their links into
//     one edge domain; flows that cross a trunk merge nothing, so the
//     trunk is the only coupling between domains. The partition is a
//     monotone union-find: domains never split when flows complete — a
//     stale merge only widens a future settle's scope, never changes a
//     computed value.
//
//   - Every link carries a committed bottleneck level: the share at
//     which it last froze flows (or, if it was never selected as a
//     bottleneck, a bound on the level it would have frozen at), +Inf
//     while it constrains nobody. A settle waterfills only the domains
//     of the trigger links; a boundary flow — one that also crosses
//     out-of-scope links — participates as a "macro-flow": its demand
//     is capped at the minimum cached level among its external links,
//     the one-float aggregate of everything outside the scope.
//
//   - Every trunk link also carries a freeze profile: the sorted
//     multiset of its crossing flows' committed rates (the "macro-flow"
//     aggregate), maintained exactly at commit time. An in-scope trunk
//     does not enumerate its mostly-unperturbed population — each
//     committed crossing flow replays from the profile as a phantom cap
//     event at its committed rate, carrying the (level, index) key of
//     the external link that would freeze it (its source). A phantom
//     whose committed rate sits at no external selected level is a
//     sentinel: it loses every event-order tie, and it firing at all
//     proves the replay invalid and fails the attempt.
//
//   - The capped fill merges two event streams in nondecreasing share
//     order: live bottleneck rounds over the scope links (the exact
//     fillScan arithmetic, off an indexed (share, index) link heap that
//     is eagerly re-keyed after every freeze batch — stale keys are NOT
//     lower bounds, because a batched subtraction can dip a share by an
//     ulp) and external freezes of boundary flows and phantoms at their
//     caps. Cap events are laid out by counting rather than comparison
//     sort: entries bucket under their source link, sources sort by
//     (level, index) through packed keys, and a bucket — one bitwise
//     value — finishes with a near-linear ord insertion pass. After the
//     fill, every boundary flow or phantom whose computed rate differs
//     bitwise from its pre-settle rate disproves the assumption that
//     the outside is unperturbed: its external links' domains join the
//     scope and the fill restarts (converged domain sets are memoised
//     per trigger set, so recurring settles skip the widening walk).
//     The iteration terminates at the exact max-min fixpoint — a fill
//     in which every boundary value is bitwise unchanged — or widens to
//     the full component, which is exactly the incremental mode's
//     settle.
//
// Bit-identity argument (the §6 proof sketch in DESIGN.md): at a
// converged attempt, (1) all external links' level trajectories are
// untouched — each of their crossing flows either kept its rate
// bitwise (validated boundary flows and phantoms) or lies entirely
// outside, where rates are unchanged by induction on previous settles;
// (2) therefore the caps equal the shares the global fill would have
// frozen those flows at, and replaying them in (share, index, ord)
// order interleaves the scope's live rounds exactly as the global
// fill would, because progressive filling's round shares are
// nondecreasing; (3) equal-share events commute bitwise (identical
// subtrahends, integer nActive decrements), so replay order within a
// tie is free — except a tie between a live round and an external
// freeze, where the global tie-break needs the external link's scan
// rank: a sourced cap carries that rank and compares directly, while a
// sentinel (no source) must lose, and an in-layer ambiguity about an
// external link's pop population replays through the journaled
// (popRes, popN) drift snapshots, widening on any bitwise mismatch.
// A float-nonmonotone event order (possible only within an ulp, where
// real-arithmetic monotonicity rounds away) aborts to the
// full-component fill rather than guess. differential_test.go and
// hier_test.go enforce the result on seeded workloads engineered to
// hit bitwise ties, against both the incremental mode and the oracle.
package fabric

import (
	"math"
	"slices"
)

// maxHierAttempts bounds the fixpoint iteration's scope expansions per
// settle before falling back to the full component. Expansion strictly
// grows the domain set, so this is a guard against pathological churn,
// not a correctness bound.
const maxHierAttempts = 32

// ensureHier sizes the union-find and domain-list arrays to the current
// link count. Links created after the mode was selected join lazily as
// singleton domains.
func (n *Network) ensureHier() {
	for i := len(n.dsuParent); i < len(n.links); i++ {
		n.dsuParent = append(n.dsuParent, int32(i))
		n.dsuSize = append(n.dsuSize, 1)
		n.domNext = append(n.domNext, -1)
		n.domTail = append(n.domTail, int32(i))
		n.domMark = append(n.domMark, 0)
	}
}

// find returns the domain root of link index i, with path halving. A
// root is also the head of its domain's member list.
func (n *Network) find(i int32) int32 {
	for n.dsuParent[i] != i {
		n.dsuParent[i] = n.dsuParent[n.dsuParent[i]]
		i = n.dsuParent[i]
	}
	return i
}

// unionDomains merges the edge domains of an activating flow's path.
// A flow that crosses a trunk link merges nothing: its edge domains
// stay separate and couple only through the trunk's cached level.
func (n *Network) unionDomains(path []*Link) {
	if len(path) < 2 {
		return
	}
	for _, l := range path {
		if l.trunk {
			return
		}
	}
	r0 := n.find(int32(path[0].index))
	for _, l := range path[1:] {
		r := n.find(int32(l.index))
		if r == r0 {
			continue
		}
		if n.dsuSize[r0] < n.dsuSize[r] {
			r0, r = r, r0
		}
		n.dsuParent[r] = r0
		n.dsuSize[r0] += n.dsuSize[r]
		n.domNext[n.domTail[r0]] = r
		n.domTail[r0] = n.domTail[r]
	}
}

// addDomain appends l's domain root to doms unless it is already in
// this settle's domain set (marked under domMarkGen).
func (n *Network) addDomain(doms []int32, l *Link) []int32 {
	r := n.find(int32(l.index))
	if n.domMark[r] == n.domMarkGen {
		return doms
	}
	n.domMark[r] = n.domMarkGen
	return append(doms, r)
}

// settleHier computes the settle's scope and rates under the
// hierarchical decomposition and returns them for the shared re-anchor
// tail. It iterates scope expansion to the exact max-min fixpoint.
func (n *Network) settleHier(trig []*Link) ([]*Flow, []*Link) {
	n.ensureHier()
	if n.nDead > 64 && n.nDead > n.nActive {
		n.compact()
	}
	n.domMarkGen++
	doms := n.domList[:0]
	for _, l := range trig {
		doms = n.addDomain(doms, l)
	}
	// Scope memo: settles with the same trigger set (for a completion,
	// the finished flow's path — a pattern that recurs every round of a
	// collective) tend to converge on the same domain set, so seed this
	// settle with the set the last same-trigger settle converged on and
	// skip the widening walk that would rediscover it. Any seed is
	// sound — convergence is validated the same way regardless — so a
	// stale or colliding seed costs only scope size, never exactness.
	memoKey := uint64(1469598103934665603)
	for _, l := range trig {
		memoKey = (memoKey ^ uint64(l.index)) * 1099511628211
	}
	if n.hierMemoMap == nil {
		n.hierMemoMap = make(map[uint64][]int32)
	}
	for _, li := range n.hierMemoMap[memoKey] {
		doms = n.addDomain(doms, n.links[li])
	}
	for attempt := 0; attempt < maxHierAttempts; attempt++ {
		n.compGen++
		gen := n.compGen
		scopeF, scopeL := n.scopeDomains(doms, gen)
		n.resetFill(scopeF, scopeL)
		converged, fallback := n.hierFill(scopeF, scopeL, gen)
		if converged {
			n.hierMut = n.hierMut[:0]
			n.commitLevels(scopeL)
			n.hierMemoMap[memoKey] = append(n.hierMemoMap[memoKey][:0], doms...)
			n.domList = doms[:0]
			return scopeF, scopeL
		}
		// The attempt is discarded: restore the external pop-state
		// snapshots its drift checks advanced, in reverse order so
		// repeated mutations of one link unwind exactly.
		for i := len(n.hierMut) - 1; i >= 0; i-- {
			m := n.hierMut[i]
			m.l.popRes = m.res
			m.l.popN = m.n
		}
		n.hierMut = n.hierMut[:0]
		if fallback {
			break
		}
		n.hierRestarts++
		prev := len(doms)
		for _, l := range n.growLinks {
			doms = n.addDomain(doms, l)
		}
		for _, l := range n.growTrunks {
			doms = n.addDomain(doms, l)
		}
		if len(doms) == prev {
			// Every offending link was already in scope — nothing left
			// to widen; resolve at the component.
			break
		}
	}
	// Fallback: the full connected component — the incremental mode's
	// exact settle — run through the level-recording fill so the
	// bottleneck cache stays current. With the whole component live
	// there are no boundary flows, no caps and no validation, and the
	// fill is fillScan arithmetic verbatim.
	n.hierFallbacks++
	n.domList = doms[:0]
	scopeF, scopeL := n.scopeComponent(trig)
	for _, f := range scopeF {
		f.hierBoundary = false
	}
	n.resetFill(scopeF, scopeL)
	n.hierFill(scopeF, scopeL, n.compGen)
	n.commitLevels(scopeL)
	return scopeF, scopeL
}

// scopeDomains collects the links of the given domains, the flows
// crossing them (in activation order, the rank-assignment order the
// naive scan uses), and classifies each flow's boundary status and
// external demand cap.
func (n *Network) scopeDomains(doms []int32, gen uint64) ([]*Flow, []*Link) {
	scopeF := n.scopeFlows[:0]
	scopeL := n.scopeLinks[:0]
	for _, r := range doms {
		for li := r; li >= 0; li = n.domNext[li] {
			l := n.links[li]
			l.compGen = gen
			scopeL = append(scopeL, l)
		}
	}
	for _, l := range scopeL {
		if l.trunk {
			// Profiled link: its committed crossing flows replay from
			// the freeze profile as phantom cap events (see hierFill)
			// instead of joining the live scope. Two exceptions fill
			// live: flows that have never settled (no profile entry
			// yet), and flows whose whole path is in scope — a phantom's
			// committed rate is anchored by its out-of-scope links, and
			// with none left the rate is simply this fill's to compute.
			for _, ref := range l.flows {
				f := ref.f
				if f.compGen == gen {
					continue
				}
				if f.profOn {
					ext := false
					for _, pl := range f.path {
						if pl.compGen != gen {
							ext = true
							break
						}
					}
					if ext {
						continue
					}
				}
				f.compGen = gen
				scopeF = append(scopeF, f)
			}
			continue
		}
		for _, ref := range l.flows {
			f := ref.f
			if f.compGen != gen {
				f.compGen = gen
				scopeF = append(scopeF, f)
			}
		}
	}
	scopeF = n.orderScope(scopeF, gen)
	for _, f := range scopeF {
		f.hierBoundary = false
		f.hierCap = math.Inf(1)
		f.hierCapIdx = int(^uint(0) >> 1)
		f.hierCapL = nil
		for _, pl := range f.path {
			if pl.compGen != gen {
				f.hierBoundary = true
				// Only links that were actually selected as bottlenecks
				// exert external pressure — every flow's freezer is by
				// definition a selected link, so a never-selected
				// external link cannot be the one that freezes f. The
				// (level, index) argmin is exactly the global fill's
				// key for f's first external freeze opportunity.
				if pl.levelSel && (pl.level < f.hierCap || (pl.level == f.hierCap && pl.index < f.hierCapIdx)) {
					f.hierCap = pl.level
					f.hierCapIdx = pl.index
					f.hierCapL = pl
				}
			}
		}
	}
	n.scopeFlows = scopeF
	return scopeF, scopeL
}

// commitLevels publishes the levels computed by a converged fill as the
// links' cached bottleneck levels.
func (n *Network) commitLevels(scopeL []*Link) {
	for _, l := range scopeL {
		l.level = l.newLevel
		l.levelSel = l.hierSel
		l.popRes = l.newPopRes
		l.popN = l.newPopN
	}
}

// hierFill is the capped progressive fill: live bottleneck rounds over
// the scope links merged, in nondecreasing share order, with external
// freezes of boundary flows at their cached caps. Live rounds come off
// an indexed (share, index) link heap — each in-scope link sits in one
// slot and is re-keyed in place when a freeze batch touches it, so the
// event loop never wades through superseded entries; the valid minimum
// is exactly the link a naive rescan would pick. Caps are static for
// the whole attempt, so they are sorted once and consumed by a cursor
// that skips flows already frozen live. Returns converged when every
// boundary flow's rate is bitwise unchanged (the fixpoint witness),
// otherwise leaves the links to widen by in n.growLinks; fallback is
// set when the merge order cannot be trusted and the settle must
// resolve at the full component.
func (n *Network) hierFill(scopeF []*Flow, scopeL []*Link, gen uint64) (converged, fallback bool) {
	// The cap event stream must replay the global fill's (value, index,
	// ord) order, but almost every entry's (value, index) is a committed
	// external link's (level, index) — its SOURCE — so instead of a
	// comparison sort the stream is laid out by counting: tag each
	// entry with its source, sort the handful of distinct sources by
	// (level, index), and scatter entries into per-source buckets. A
	// bucket shares one bitwise value, so within it only ord matters,
	// and entries arrive as a few ord-sorted runs (boundary flows in
	// activation order, then each trunk profile's same-value span) that
	// a near-linear insertion pass finishes. Sentinel entries (no
	// source at their value, idx -1) are collected apart and merged by
	// value at consumption; their order among themselves is
	// unobservable — they lose every tie and fire only to fail.
	raw := n.capHeap[:0]
	sent := n.capSent[:0]
	srcs := n.capSrcs[:0]
	for _, f := range scopeF {
		if f.hierBoundary && !math.IsInf(f.hierCap, 1) {
			e := f.hierCapL
			if e.srcGen != gen {
				e.srcGen = gen
				e.srcCnt = 0
				srcs = append(srcs, e)
			}
			e.srcCnt++
			raw = append(raw, capEntry{cap: f.hierCap, idx: f.hierCapIdx, f: f})
		}
	}
	// Phantom build: every in-scope trunk contributes its out-of-scope
	// committed flows as cap events at their current rates, straight
	// from the freeze profile. A converged attempt proves those rates
	// are bitwise fixed-point values (each phantom freezes at exactly
	// its profile value), so skipping their enumeration loses nothing;
	// any phantom that a live round would re-price fails validation and
	// widens the scope like a boundary flow. The entry's source replays
	// the external freezer's (level, index) key when the profile value
	// sits exactly at an external selected level, so drift bookkeeping
	// calls match the enumerated fill's.
	nPhantom := 0
	for _, l := range scopeL {
		if !l.trunk {
			continue
		}
		for _, e := range l.prof {
			f := e.f
			if f.compGen == gen || f.phGen == gen {
				continue
			}
			f.phGen = gen
			f.frozen = false
			nPhantom++
			if e2 := phantomSrc(f, e.v, gen); e2 != nil {
				if e2.srcGen != gen {
					e2.srcGen = gen
					e2.srcCnt = 0
					srcs = append(srcs, e2)
				}
				e2.srcCnt++
				raw = append(raw, capEntry{cap: e.v, idx: e2.index, f: f})
			} else {
				sent = append(sent, capEntry{cap: e.v, idx: -1, f: f})
			}
			for _, pl := range f.path {
				if pl.compGen == gen {
					pl.nActive++
				}
			}
		}
	}
	// Sort the sources by (level, index) through packed value keys — a
	// positive float's bit pattern is order-preserving, and keeping the
	// keys contiguous spares the comparator a pointer chase per probe.
	keys := n.srcKeys[:0]
	for _, e := range srcs {
		keys = append(keys, srcKey{bits: math.Float64bits(e.level), idx: int32(e.index)})
	}
	slices.SortFunc(keys, func(a, b srcKey) int {
		if a.bits != b.bits {
			if a.bits < b.bits {
				return -1
			}
			return 1
		}
		return int(a.idx) - int(b.idx)
	})
	slices.SortFunc(sent, func(a, b capEntry) int {
		switch {
		case a.cap < b.cap:
			return -1
		case a.cap > b.cap:
			return 1
		}
		return 0
	})
	base := int32(0)
	for _, k := range keys {
		e := n.links[k.idx]
		e.srcSlot = base
		base += e.srcCnt
	}
	caps := n.capArr
	if cap(caps) < len(raw) {
		caps = make([]capEntry, len(raw), len(raw)*2)
	} else {
		caps = caps[:len(raw)]
	}
	for _, e := range raw {
		s := n.links[e.idx]
		caps[s.srcSlot] = e
		s.srcSlot++
	}
	for _, e := range srcs {
		ordSort(caps[e.srcSlot-e.srcCnt : e.srcSlot])
	}
	ci, zi := 0, 0
	n.hheapInit(scopeL)
	grow := n.growLinks[:0]
	growT := n.growTrunks[:0]
	converged = true
	sawCap := len(caps) > 0 || len(sent) > 0
	lastShare := math.Inf(-1)
	unfrozen := len(scopeF)
	for unfrozen > 0 || nPhantom > 0 {
		// Every freeze batch eagerly re-keys the links it touched, so the
		// heap always stores true (share, index) keys and the top is the
		// exact link a naive rescan would pick — including the ulp-scale
		// share DIPS a batch subtraction can produce, which a lazily
		// deferred re-key would bury behind the stale higher key and
		// reorder the fill. The dirty-top loop below is a safety net for
		// that invariant, not a fast path.
		share := math.Inf(1)
		var bottleneck *Link
		for len(n.hheap) > 0 {
			top := n.hheap[0]
			if top.pushVer != top.allocVer {
				top.pushVer = top.allocVer
				n.hheapFix(top)
				continue
			}
			share, bottleneck = top.hshare, top
			break
		}
		for ci < len(caps) && caps[ci].f.frozen {
			ci++
		}
		for zi < len(sent) && sent[zi].f.frozen {
			zi++
		}
		capShare := math.Inf(1)
		capIdx := 0
		fromSent := false
		if ci < len(caps) {
			capShare, capIdx = caps[ci].cap, caps[ci].idx
		}
		if zi < len(sent) && sent[zi].cap <= capShare {
			// A sentinel precedes every sourced cap at its value (idx -1
			// is below any real index), matching the sorted-stream order.
			capShare, capIdx, fromSent = sent[zi].cap, -1, true
		}
		if bottleneck == nil && ci >= len(caps) && zi >= len(sent) {
			break
		}
		// A bitwise share tie between a cap and a live round replays the
		// global fill's (share, index) order: the cap carries its external
		// source link's index, directly comparable with the live link's.
		// A phantom sentinel (idx -1: no external source at this value)
		// must lose every tie — if its rate is still right, an in-scope
		// pop at this value freezes it in its batch, exactly as the
		// enumerated fill would; the sentinel firing at all means nothing
		// froze the flow at its committed rate and the attempt fails.
		capFirst := capShare < share || (capShare == share && capIdx >= 0 && capIdx < bottleneck.index)
		ev := share
		if capFirst {
			ev = capShare
		}
		if sawCap && ev < lastShare {
			// The value-merge reproduces the global round order only
			// while event shares are nondecreasing. Real-arithmetic
			// progressive filling is monotone; a float can dip below a
			// previous round by an ulp, and then we refuse to guess.
			n.capHeap = raw[:0]
			n.capArr = caps[:0]
			n.capSent = sent[:0]
			n.capSrcs = srcs[:0]
			n.growLinks = grow[:0]
			n.growTrunks = growT[:0]
			return false, true
		}
		lastShare = ev
		if capFirst {
			var f *Flow
			if fromSent {
				f = sent[zi].f
				zi++
			} else {
				f = caps[ci].f
				ci++
			}
			phantom := f.compGen != gen
			if phantom && capIdx < 0 {
				// Sentinel fired: no selected external link sits at this
				// flow's committed rate, and no in-scope round froze it
				// live before its value came up — whatever constraint set
				// the rate has moved, so the profile replay is invalid
				// here. Settle the flow live next attempt.
				converged = false
				grow, growT = appendExternal(grow, growT, f, gen)
			}
			if capShare != f.rate {
				// The outside would freeze this flow at a different
				// share than it last did: the perturbation crosses the
				// boundary. Widen to its external links' domains.
				converged = false
				grow, growT = appendExternal(grow, growT, f, gen)
			}
			var driftOK bool
			grow, growT, driftOK = n.checkExternalDrift(f, capShare, capIdx, gen, grow, growT)
			if !driftOK {
				converged = false
			}
			f.frozen = true
			if phantom {
				nPhantom--
			} else {
				unfrozen--
			}
			f.newRate = capShare
			for _, pl := range f.path {
				if pl.compGen != gen {
					continue
				}
				if pl.residual/float64(pl.nActive) == capShare {
					// pl sits exactly at this event's value: it is a
					// member of the same equal-value layer, and in the
					// global fill it pops at this value too (its own
					// round, or a would-freeze had its flows not been
					// taken first). Record the level now — if its flows
					// are all frozen by other layer events it never pops,
					// and without the mark it would lose its cap validity
					// for future settles.
					pl.hierSel = true
					pl.newLevel = capShare
					pl.newPopRes = pl.residual
					pl.newPopN = int32(pl.nActive)
				}
				pl.residual -= capShare
				if pl.residual < 0 {
					pl.residual = 0
				}
				pl.nActive--
				pl.allocVer++
			}
			for _, pl := range f.path {
				if pl.compGen == gen && pl.pushVer != pl.allocVer {
					pl.pushVer = pl.allocVer
					n.hheapFix(pl)
				}
			}
			continue
		}
		bottleneck.hierSel = true
		bottleneck.newLevel = share
		bottleneck.newPopRes = bottleneck.residual
		bottleneck.newPopN = int32(bottleneck.nActive)
		for _, ref := range bottleneck.flows {
			f := ref.f
			if f.frozen {
				continue
			}
			// A phantom frozen by a live pop is the normal fate of a
			// trunk-constrained committed flow: the trunk's round freezes
			// its whole unfrozen population in one batch, phantoms
			// included, exactly as the enumerated fill would. Validation
			// is the same as a boundary flow's (every phantom has
			// out-of-scope links, by the scopeDomains whole-path rule).
			phantom := f.compGen != gen
			if f.hierBoundary || phantom {
				if share != f.rate {
					// This flow's rate changes, and it crosses the scope
					// boundary: its external links see a perturbed
					// contribution and must be settled live.
					converged = false
					grow, growT = appendExternal(grow, growT, f, gen)
				}
				var driftOK bool
				grow, growT, driftOK = n.checkExternalDrift(f, share, -1, gen, grow, growT)
				if !driftOK {
					converged = false
				}
			}
			f.frozen = true
			if phantom {
				nPhantom--
			} else {
				unfrozen--
			}
			f.newRate = share
			for _, pl := range f.path {
				if pl.compGen != gen {
					continue
				}
				if pl != bottleneck && pl.residual/float64(pl.nActive) == share {
					// Same layer-membership rule as the cap branch: a
					// link tied at the event value keeps a committed
					// would-freeze level even if this round takes its
					// last flows.
					pl.hierSel = true
					pl.newLevel = share
					pl.newPopRes = pl.residual
					pl.newPopN = int32(pl.nActive)
				}
				pl.residual -= share
				if pl.residual < 0 {
					pl.residual = 0
				}
				pl.nActive--
				pl.allocVer++
			}
		}
		for _, ref := range bottleneck.flows {
			for _, pl := range ref.f.path {
				if pl.compGen == gen && pl.pushVer != pl.allocVer {
					pl.pushVer = pl.allocVer
					n.hheapFix(pl)
				}
			}
		}
	}
	n.capHeap = raw[:0]
	n.capArr = caps[:0]
	n.capSent = sent[:0]
	n.capSrcs = srcs[:0]
	n.srcKeys = keys[:0]
	n.growLinks = grow
	n.growTrunks = growT
	return converged, false
}

// srcKey is a cap-source link's packed (level, index) stream position:
// the level's raw bits compare like the (nonnegative) float.
type srcKey struct {
	bits uint64
	idx  int32
}

// ordSort finishes a source bucket: entries share one bitwise value, so
// activation order is the only remaining key, and the bucket is a
// concatenation of a few already-ord-sorted runs — insertion sort is
// near-linear here.
func ordSort(b []capEntry) {
	for i := 1; i < len(b); i++ {
		e := b[i]
		j := i - 1
		for j >= 0 && b[j].f.ord > e.f.ord {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = e
	}
}

// linkMut journals an external link's cached pop state before an
// in-settle mutation, so a failed fill attempt can restore it exactly.
type linkMut struct {
	l   *Link
	res float64
	n   int32
}

// checkExternalDrift handles the one in-layer ambiguity a scoped fill
// cannot replay: boundary flow f is frozen at value v by some agent
// other than external link E while E's cached level ties v bitwise. In
// the global fill, f's freeze may now precede E's bottleneck round
// (last settle it may not have), shifting E's pop value to
// (popRes-v)/(popN-1). If that share is still exactly v the committed
// cap stays valid and the snapshot advances (journaled for undo on a
// failed attempt); if it drifts by even an ulp, every remaining cap
// sourced from E is stale and the scope must widen to E's domain.
// srcIdx is the cap's source link index (or -1 for a live freeze): the
// source replays E's own round, so it is exempt.
func (n *Network) checkExternalDrift(f *Flow, v float64, srcIdx int, gen uint64, grow, growT []*Link) ([]*Link, []*Link, bool) {
	ok := true
	for _, pl := range f.path {
		if pl.compGen == gen || pl.index == srcIdx || !pl.levelSel || pl.level != v {
			continue
		}
		if pl.popN <= 1 {
			// f was E's whole remaining pop set; no other flow's cap
			// depends on E's post-freeze share.
			continue
		}
		if (pl.popRes-v)/float64(pl.popN-1) != v {
			ok = false
			if pl.trunk {
				growT = append(growT, pl)
			} else {
				grow = append(grow, pl)
			}
			continue
		}
		n.hierMut = append(n.hierMut, linkMut{l: pl, res: pl.popRes, n: pl.popN})
		pl.popRes -= v
		pl.popN--
	}
	return grow, growT, ok
}

// appendExternal appends f's out-of-scope links to the widening lists:
// edge links to grow, trunks to growT (widened only when edge-side
// widening stalls — see settleHier).
func appendExternal(grow, growT []*Link, f *Flow, gen uint64) ([]*Link, []*Link) {
	for _, pl := range f.path {
		if pl.compGen != gen {
			if pl.trunk {
				growT = append(growT, pl)
			} else {
				grow = append(grow, pl)
			}
		}
	}
	return grow, growT
}

// HierStats reports the hierarchical allocator's fixpoint behaviour
// since the network was created: scope-expansion restarts and
// full-component fallbacks. Both are perf counters, not errors — every
// path computes bit-identical rates.
func (n *Network) HierStats() (restarts, fallbacks uint64) {
	return n.hierRestarts, n.hierFallbacks
}

// --- cap events: boundary caps and phantom replays, sorted (cap, idx, ord) --
//
// The cap set is fixed for a whole fill attempt, so it is materialized
// once, sorted, and consumed by a cursor instead of heap-popped.

type capEntry struct {
	cap float64
	idx int // index of the external link whose round this cap replays; -1 = sentinel
	f   *Flow
}

// phantomSrc computes the source link whose round a phantom's cap
// replays: the (level, index)-argmin over the flow's out-of-scope
// selected links — the same key scopeDomains assigns an enumerated
// boundary flow's cap. If that minimum level is not bitwise the flow's
// committed rate, no external round sits at the replay value and the
// cap is a sentinel (nil source, idx -1): it loses every tie against
// live rounds, and it firing at all fails the attempt.
func phantomSrc(f *Flow, v float64, gen uint64) *Link {
	var best *Link
	for _, pl := range f.path {
		if pl.compGen == gen || !pl.levelSel {
			continue
		}
		if best == nil || pl.level < best.level || (pl.level == best.level && pl.index < best.index) {
			best = pl
		}
	}
	if best != nil && best.level == v {
		return best
	}
	return nil
}

// --- trunk freeze profiles ------------------------------------------------
//
// A trunk link's profile is the sorted multiset of its crossing flows'
// committed rates — the aggregate a scoped fill replays instead of
// enumerating the flows. Maintained at commit time (profUpdate) and on
// completion, so it is exact between settles by construction.

type profEntry struct {
	v   float64
	ord uint64
	f   *Flow
}

func profCmp(a, b profEntry) int {
	switch {
	case a.v < b.v:
		return -1
	case a.v > b.v:
		return 1
	}
	switch {
	case a.ord < b.ord:
		return -1
	case a.ord > b.ord:
		return 1
	}
	return 0
}

func (l *Link) profIns(v float64, f *Flow) {
	i, _ := slices.BinarySearchFunc(l.prof, profEntry{v: v, ord: f.ord}, profCmp)
	l.prof = slices.Insert(l.prof, i, profEntry{v: v, ord: f.ord, f: f})
}

func (l *Link) profDel(v float64, ord uint64) {
	i, ok := slices.BinarySearchFunc(l.prof, profEntry{v: v, ord: ord}, profCmp)
	if !ok {
		panic("fabric: freeze-profile entry missing")
	}
	l.prof = slices.Delete(l.prof, i, i+1)
}

// profUpdate moves a flow whose committed rate just changed to its new
// position in every trunk profile on its path. Called from the settle
// commit tail, before f.rate is overwritten.
func (n *Network) profUpdate(f *Flow) {
	for _, l := range f.path {
		if !l.trunk {
			continue
		}
		if f.profOn {
			l.profDel(f.rate, f.ord)
		}
		l.profIns(f.newRate, f)
	}
	f.profOn = true
}

// --- indexed in-scope bottleneck heap, keyed (share, index) ---------------
//
// Unlike the incremental fill's lazily-invalidated heap, every in-scope
// link occupies at most one slot (Link.hpos) with its key cached in
// Link.hshare; a freeze batch re-keys touched links in place, so the
// event loop never pops stale entries. The order — (residual/nActive,
// index) — matches the naive rescan and the lazy heap bit-for-bit.

func hlinkLess(a, b *Link) bool {
	if a.hshare != b.hshare {
		return a.hshare < b.hshare
	}
	return a.index < b.index
}

// hheapInit builds the heap over the scope links that still carry
// unfrozen flows. O(len(scopeL)).
func (n *Network) hheapInit(scopeL []*Link) {
	hh := n.hheap[:0]
	for _, l := range scopeL {
		l.pushVer = l.allocVer
		if l.nActive > 0 {
			l.hshare = l.residual / float64(l.nActive)
			l.hpos = int32(len(hh))
			hh = append(hh, l)
		} else {
			l.hpos = -1
		}
	}
	for i := len(hh)/2 - 1; i >= 0; i-- {
		hheapDown(hh, i)
	}
	n.hheap = hh
}

func hheapDown(hh []*Link, i int) {
	for {
		kid := 2*i + 1
		if kid >= len(hh) {
			break
		}
		if r := kid + 1; r < len(hh) && hlinkLess(hh[r], hh[kid]) {
			kid = r
		}
		if !hlinkLess(hh[kid], hh[i]) {
			break
		}
		hh[i], hh[kid] = hh[kid], hh[i]
		hh[i].hpos = int32(i)
		hh[kid].hpos = int32(kid)
		i = kid
	}
}

func hheapUp(hh []*Link, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !hlinkLess(hh[i], hh[parent]) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		hh[i].hpos = int32(i)
		hh[parent].hpos = int32(parent)
		i = parent
	}
}

// hheapFix re-keys l after a freeze batch changed its residual or
// nActive, removing it once no unfrozen flows remain. Links never
// re-enter within a fill: nActive only decreases. No-op for links not
// currently in the heap.
func (n *Network) hheapFix(l *Link) {
	i := int(l.hpos)
	if i < 0 {
		return
	}
	hh := n.hheap
	if l.nActive == 0 {
		last := len(hh) - 1
		l.hpos = -1
		if i != last {
			hh[i] = hh[last]
			hh[i].hpos = int32(i)
		}
		hh[last] = nil
		n.hheap = hh[:last]
		if i != last {
			hheapDown(n.hheap, i)
			hheapUp(n.hheap, i)
		}
		return
	}
	l.hshare = l.residual / float64(l.nActive)
	hheapDown(hh, i)
	hheapUp(hh, i)
}
