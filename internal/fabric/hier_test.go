package fabric

import (
	"fmt"
	"math/rand"
	"testing"
)

// randClusterProgram draws cluster-shaped workloads for the
// hierarchical mode: per-machine up/down NIC links (the edge domains)
// plus a small trunk core, with flow waves mixing trunk-crossing
// cross-machine transfers, trunkless cross-domain flows (which union
// their NIC domains), and single-link local flows. Capacities and
// sizes come from the same small grids as randProgram so distinct
// links hit bitwise-equal shares — the tie cases the scope-boundary
// escape hatches exist for.
func randClusterProgram(rng *rand.Rand) progSpec {
	nMach := 3 + rng.Intn(10)
	nTrunk := 1 + rng.Intn(3)
	capGrid := []float64{1e9, 2e9, 4e9, 1e9}
	latGrid := []float64{0, 0, 1e-6}
	var p progSpec
	// links: up[m] = m, down[m] = nMach+m, trunk[t] = 2*nMach+t
	for i := 0; i < 2*nMach; i++ {
		p.caps = append(p.caps, capGrid[rng.Intn(len(capGrid))])
		p.lats = append(p.lats, latGrid[rng.Intn(len(latGrid))])
		p.trunk = append(p.trunk, false)
	}
	for t := 0; t < nTrunk; t++ {
		p.caps = append(p.caps, 4e9)
		p.lats = append(p.lats, latGrid[rng.Intn(len(latGrid))])
		p.trunk = append(p.trunk, true)
	}
	sizeGrid := []float64{1e6, 2e6, 4e6, 1e6, 8e6}
	effGrid := []float64{1, 1, 0.5, 0.85}
	timeGrid := []float64{0, 0, 0.001, 0.002, 0.005, 0.01}
	nBatches := 2 + rng.Intn(5)
	for b := 0; b < nBatches; b++ {
		p.adTimes = append(p.adTimes, timeGrid[rng.Intn(len(timeGrid))])
		p.single = append(p.single, rng.Intn(3) == 0)
		nFlows := 2 + rng.Intn(10)
		var fl []progFlow
		for i := 0; i < nFlows; i++ {
			src := rng.Intn(nMach)
			dst := rng.Intn(nMach)
			var path []int
			switch rng.Intn(6) {
			case 0: // local: source NIC only
				path = []int{src}
			case 1: // trunkless cross-domain: unions the two NIC domains
				if dst == src {
					dst = (dst + 1) % nMach
				}
				path = []int{src, nMach + dst}
			default: // the common shape: up → trunk → down
				path = []int{src, 2*nMach + (src+dst)%nTrunk, nMach + dst}
			}
			size := sizeGrid[rng.Intn(len(sizeGrid))]
			if rng.Intn(12) == 0 {
				size = 0 // pure-latency flow
			}
			fl = append(fl, progFlow{size: size, eff: effGrid[rng.Intn(len(effGrid))], path: path})
		}
		p.batches = append(p.batches, fl)
	}
	for i := 0; i < 6; i++ {
		p.probes = append(p.probes, timeGrid[rng.Intn(len(timeGrid))]+float64(i)*0.0013)
	}
	return p
}

// requireBitIdentical asserts two runs agree float-for-float on every
// observable: completion times, completion callback order, per-link
// carried bytes and busy time, and mid-run rate/remaining probes.
func requireBitIdentical(t *testing.T, tag string, want, got progResult) {
	t.Helper()
	if i, ok := bitEqual(want.finishAt, got.finishAt); !ok {
		t.Fatalf("%s: completion time diverges at flow %d: %v vs %v", tag, i, want.finishAt[i], got.finishAt[i])
	}
	if i, ok := bitEqual(want.carried, got.carried); !ok {
		t.Fatalf("%s: carried bytes diverge at link %d: %v vs %v", tag, i, want.carried[i], got.carried[i])
	}
	if i, ok := bitEqual(want.busy, got.busy); !ok {
		t.Fatalf("%s: busy seconds diverge at link %d: %v vs %v", tag, i, want.busy[i], got.busy[i])
	}
	if i, ok := bitEqual(want.probe, got.probe); !ok {
		t.Fatalf("%s: mid-run probe diverges at sample %d: %v vs %v", tag, i, want.probe[i], got.probe[i])
	}
	if len(want.order) != len(got.order) {
		t.Fatalf("%s: completion count diverges: %d vs %d", tag, len(want.order), len(got.order))
	}
	for i := range want.order {
		if want.order[i] != got.order[i] {
			t.Fatalf("%s: completion order diverges at %d: %q vs %q", tag, i, want.order[i], got.order[i])
		}
	}
}

// TestDifferentialHierarchical pins ModeHierarchical bitwise against
// the incremental allocator (and, on the same programs, the oracle)
// across seeds × topologies × churn schedules. Even seeds run the
// unstructured randProgram topologies with random trunk markings —
// adversarial partitions where "trunks" cut arbitrary link subsets —
// and odd seeds run cluster-shaped programs with real edge domains and
// a shared core. This is the contract that makes the hierarchical mode
// a pure perf change: any float anywhere differing by one ulp fails.
func TestDifferentialHierarchical(t *testing.T) {
	cases := 300
	if testing.Short() {
		cases = 60
	}
	for seed := 0; seed < cases; seed++ {
		rng := rand.New(rand.NewSource(int64(40000 + seed)))
		var p progSpec
		if seed%2 == 0 {
			p = randProgram(rng)
			p.trunk = make([]bool, len(p.caps))
			for i := range p.trunk {
				p.trunk[i] = rng.Intn(4) == 0
			}
		} else {
			p = randClusterProgram(rng)
		}
		inc := runProgram(p, ModeIncremental)
		hier := runProgram(p, ModeHierarchical)
		requireBitIdentical(t, fmt.Sprintf("seed %d: hier vs incremental", seed), hier, inc)
		oracle := runProgram(p, ModeOracle)
		requireBitIdentical(t, fmt.Sprintf("seed %d: hier vs oracle", seed), hier, oracle)
	}
}
