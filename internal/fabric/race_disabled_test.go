//go:build !race

package fabric

// raceEnabled gates the allocation-regression tests; see the race
// variant of this file.
const raceEnabled = false
