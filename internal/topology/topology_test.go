package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultSpecValid(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		if err := DefaultSpec(n).Validate(); err != nil {
			t.Fatalf("DefaultSpec(%d): %v", n, err)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.NumMachines = 0 },
		func(s *Spec) { s.GPUsPerNode = 0 },
		func(s *Spec) { s.GPUsPerPCIe = 3 }, // does not divide 8
		func(s *Spec) { s.NICBps = 0 },
		func(s *Spec) { s.GPUFlops = -1 },
	}
	for i, mut := range cases {
		s := DefaultSpec(2)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestClusterShape(t *testing.T) {
	c, err := New(DefaultSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumGPUs(); got != 32 {
		t.Fatalf("NumGPUs = %d, want 32", got)
	}
	if len(c.Machines) != 4 {
		t.Fatalf("machines = %d, want 4", len(c.Machines))
	}
	for mi, m := range c.Machines {
		if len(m.GPUs) != 8 {
			t.Fatalf("machine %d has %d GPUs", mi, len(m.GPUs))
		}
		if len(m.Switches) != 4 {
			t.Fatalf("machine %d has %d PCIe switches", mi, len(m.Switches))
		}
	}
	// Global ranks are machine-major.
	g := c.GPU(19)
	if g.Machine.Index != 2 || g.Local != 3 {
		t.Fatalf("GPU(19) = machine %d local %d, want 2/3", g.Machine.Index, g.Local)
	}
}

func TestPCIeSwitchAssignment(t *testing.T) {
	c, _ := New(DefaultSpec(1))
	// GPUs 0,1 -> switch 0; 2,3 -> 1; 4,5 -> 2; 6,7 -> 3.
	for li, want := range []int{0, 0, 1, 1, 2, 2, 3, 3} {
		if got := c.Machines[0].GPUs[li].PCIeSwitchIndex(); got != want {
			t.Fatalf("GPU %d switch = %d, want %d", li, got, want)
		}
	}
	peers := c.Machines[0].GPUs[4].Peers()
	if len(peers) != 1 || peers[0].Local != 5 {
		t.Fatalf("GPU 4 peers = %v, want [g5]", peers)
	}
}

func TestIntraMachinePathUsesNVLink(t *testing.T) {
	c, _ := New(DefaultSpec(2))
	src, dst := c.GPU(0), c.GPU(5)
	path := c.PathGPUToGPU(src, dst)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if path[0] != src.NVOut || path[1] != dst.NVIn {
		t.Fatalf("intra-machine path does not use NVSwitch ports")
	}
	for _, l := range path {
		if l.Class() != "nvlink" {
			t.Fatalf("link class %q, want nvlink", l.Class())
		}
	}
}

func TestInterMachinePathUsesGDR(t *testing.T) {
	c, _ := New(DefaultSpec(2))
	src, dst := c.GPU(1), c.GPU(14) // machine 0 -> machine 1
	path := c.PathGPUToGPU(src, dst)
	classes := make([]string, len(path))
	for i, l := range path {
		classes[i] = l.Class()
	}
	want := []string{"pcie-gpu", "nic", "nic", "pcie-gpu"}
	if len(classes) != len(want) {
		t.Fatalf("path classes = %v", classes)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("path classes = %v, want %v", classes, want)
		}
	}
}

func TestSameGPUPathIsNil(t *testing.T) {
	c, _ := New(DefaultSpec(1))
	if p := c.PathGPUToGPU(c.GPU(3), c.GPU(3)); p != nil {
		t.Fatalf("self path = %v, want nil", p)
	}
}

func TestHierarchicalFetchPaths(t *testing.T) {
	c, _ := New(DefaultSpec(2))
	src := c.GPU(9) // machine 1
	dst := c.Machines[0]
	p1 := c.PathGPUToRemoteCPU(src, dst, 2)
	wantClasses := []string{"pcie-gpu", "nic", "nic", "pcie-host"}
	for i, l := range p1 {
		if l.Class() != wantClasses[i] {
			t.Fatalf("stage1 classes mismatch at %d: %v", i, l.Class())
		}
	}
	// Stage 2 from CPU to a GPU on switch 2 must use that switch's lanes.
	g := c.Machines[0].GPUs[5]
	p2 := c.PathLocalCPUToGPU(g)
	if len(p2) != 2 || p2[0] != c.Machines[0].Switches[2].FromCPU || p2[1] != g.FromSwitch {
		t.Fatalf("stage2 path wrong: %v", p2)
	}
}

func TestGradientPushPath(t *testing.T) {
	c, _ := New(DefaultSpec(2))
	owner := c.GPU(12) // machine 1
	path := c.PathCPUToRemoteGPU(c.Machines[0], 1, owner)
	if path[0] != c.Machines[0].Switches[1].FromCPU {
		t.Fatalf("gradient push does not start at chosen switch")
	}
	if path[len(path)-1] != owner.FromSwitch {
		t.Fatalf("gradient push does not end at owner GPU")
	}
}

func TestInterNodeLinksCount(t *testing.T) {
	c, _ := New(DefaultSpec(4))
	// 4 machines × 4 NICs × 2 directions.
	if got := len(c.InterNodeLinks()); got != 32 {
		t.Fatalf("inter-node links = %d, want 32", got)
	}
}

// Property: for any valid ranks, routing is symmetric in structure —
// reverse path crosses the same number of links, and inter-machine paths
// always traverse exactly two NIC links.
func TestRoutingStructureProperty(t *testing.T) {
	c, _ := New(DefaultSpec(4))
	prop := func(a, b uint8) bool {
		src := c.GPU(int(a) % c.NumGPUs())
		dst := c.GPU(int(b) % c.NumGPUs())
		fwd := c.PathGPUToGPU(src, dst)
		rev := c.PathGPUToGPU(dst, src)
		if len(fwd) != len(rev) {
			return false
		}
		nics := 0
		for _, l := range fwd {
			if l.Class() == "nic" {
				nics++
			}
		}
		if src.Machine == dst.Machine {
			return nics == 0
		}
		return nics == 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNICStriping(t *testing.T) {
	c, _ := New(DefaultSpec(2))
	src := c.GPU(8)
	seen := map[*PCIeSwitch]bool{}
	for via := 0; via < 8; via++ {
		p := c.PathGPUToRemoteCPU(src, c.Machines[0], via)
		for _, sw := range c.Machines[0].Switches {
			if p[2] == sw.NICIn {
				seen[sw] = true
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("striping used %d NICs, want 4", len(seen))
	}
}
