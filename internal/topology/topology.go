// Package topology builds the cluster model the simulations run on: the
// link graph of an A100-class machine (GPUs on an NVSwitch fabric, PCIe
// switches each connecting two GPUs and one NIC to the host) and a
// multi-machine cluster joined by a non-blocking spine, matching the
// testbed in §7.1 and Figure 6 of the Janus paper.
//
// The package owns path selection: every engine expresses communication
// as "bytes from endpoint A to endpoint B" and the topology translates
// that into an ordered list of fabric links. Keeping routing here means
// the expert-centric and data-centric engines contend on exactly the
// same physical resources.
package topology

import (
	"fmt"

	"janus/internal/fabric"
	"janus/internal/sim"
)

// Spec describes the hardware of a cluster. The defaults (DefaultSpec)
// model the paper's testbed: 8×A100 SXM 80GB per machine, NVSwitch,
// four PCIe switches per machine each attaching two GPUs and one
// 200 Gbps NIC.
//
// Capacities are *effective* bytes per second: nominal link rate times a
// protocol-efficiency factor, which is how flow-level models absorb
// header overhead, congestion-control slack and kernel launch gaps.
type Spec struct {
	NumMachines int
	GPUsPerNode int // GPUs per machine
	GPUsPerPCIe int // GPUs attached to one PCIe switch (and one NIC)

	// AllocMode selects the fabric allocator. The zero value is
	// fabric.ModeIncremental (the default); fabric.ModeHierarchical
	// activates the edge-domain/trunk-core decomposition, for which the
	// builder marks every NIC link as trunk core — the spine is the
	// only inter-machine coupling, so machines become edge domains. All
	// modes compute bit-identical timelines (see internal/fabric).
	AllocMode fabric.AllocMode

	// Effective per-direction capacities, bytes/second.
	NVLinkBps float64 // GPU <-> NVSwitch port
	PCIeBps   float64 // GPU <-> PCIe switch, and PCIe switch <-> CPU
	NICBps    float64 // NIC <-> spine

	// Per-link one-way latencies, seconds.
	NVLinkLatency float64
	PCIeLatency   float64
	NICLatency    float64

	// Protocol efficiencies: the goodput fraction of the allocated
	// link share each traffic type achieves. The Janus paper's §3.1
	// stress test measured All-to-All goodput of 1846.58 Gbps
	// intra-machine (vs ~19.2 Tbps of NVLink egress: ~10-13%) and
	// 101.9 Gbps inter-machine (vs 800 Gbps of NICs per machine:
	// ~13%), so collective All-to-All derates uniformly to ~0.13.
	// Large sequential pulls (the data-centric fetches) behave like
	// single-stream RDMA and reach near line rate; §7.5 notes they are
	// PCIe-limited rather than NIC-limited, consistent with ~0.85.
	A2AEfficiency       float64 // NCCL-style All-to-All goodput fraction
	AllReduceEfficiency float64 // ring AllReduce goodput fraction

	// PullEfficiency is the goodput fraction of a task-queue pull that
	// crosses the network (internal NVLink pulls, external NIC fetches,
	// gradient pushes). It is low: the paper's Figure 13 shows ~9.4 MB
	// experts arriving ~14 ms apart, i.e. the socket-control-plane pull
	// path delivers only a few percent of line rate.
	PullEfficiency float64

	// MemcpyEfficiency is the goodput fraction of local host<->device
	// staging copies (Cache-Manager stage-2, offload, backward reload):
	// plain cudaMemcpy-style transfers that run near line rate.
	MemcpyEfficiency float64

	// FetchOpLatency is the fixed part of the per-fetched-expert
	// framework cost (kernel-stream sync + queue poll), paid once per
	// fetched expert per pass regardless of expert size.
	FetchOpLatency float64

	// FetchOpBps models the size-proportional part of the
	// per-fetched-expert framework cost a
	// data-centric worker pays around each expert's computation — the
	// FetchOp credit-buffer poll, the CUDA stream synchronisation on
	// the arrived weights, and the staging copy into the kernel's
	// layout (§6's FetchOp) — as an effective bandwidth over the
	// expert's bytes, since all three scale with expert size.
	// Expert-centric execution runs one batch per expert layer and
	// does not pay it. 0 disables the cost.
	FetchOpBps float64

	// PullLatency is the fixed control-plane cost of one pull request:
	// the socket round trip to the target plus the scheduler tick before
	// the transfer starts (§6's socket control plane / RDMA data plane
	// split). Figure 13 of the paper shows individual 9.4 MB expert
	// pulls taking ~10-15 ms wall time — an order of magnitude above
	// their wire time — which pins this constant, not bandwidth, as the
	// dominant cost of a single fetch.
	PullLatency float64

	// Compute model.
	GPUFlops       float64 // effective FLOP/s for dense fp16 matmul work
	CPUReduceBps   float64 // host-memory bandwidth for gradient pre-reduce
	KernelOverhead float64 // fixed per-op launch overhead, seconds

	// SmallBatchRampRows models GEMM efficiency collapse on short
	// batches: a kernel over `rows` rows achieves rows/(rows+ramp) of
	// GPUFlops. This is what separates the paradigms on many-expert
	// blocks — data-centric splits the expert layer into per-(worker,
	// expert) kernels of T/numExperts rows, while expert-centric runs
	// each expert once over its global batch. 0 disables the ramp.
	SmallBatchRampRows float64

	// Memory model.
	GPUMemBytes float64
}

// DefaultSpec returns the paper-testbed hardware model. Effective rates:
// NVLink 300 GB/s/direction × 0.80, PCIe 4.0 x16 32 GB/s/direction ×
// 0.80, NIC 200 Gbps = 25 GB/s × 0.90. The GPU FLOP rate is calibrated
// so the MoE-GPT forward pass lands in the paper's ~200 ms regime
// (A100 fp16 peak 312 TFLOPS derated for small-batch and framework
// overhead, matching the iteration times in §7.2.2).
func DefaultSpec(numMachines int) Spec {
	return Spec{
		NumMachines:         numMachines,
		GPUsPerNode:         8,
		GPUsPerPCIe:         2,
		NVLinkBps:           300e9 * 0.80,
		PCIeBps:             32e9 * 0.80,
		NICBps:              25e9 * 0.90,
		NVLinkLatency:       3e-6,
		PCIeLatency:         5e-6,
		NICLatency:          8e-6,
		A2AEfficiency:       0.13,
		AllReduceEfficiency: 0.70,
		PullEfficiency:      0.10,
		MemcpyEfficiency:    0.80,
		PullLatency:         1.5e-3,
		FetchOpLatency:      0.1e-3,
		FetchOpBps:          6e9,
		GPUFlops:            22e12,
		CPUReduceBps:        50e9,
		KernelOverhead:      30e-6,
		SmallBatchRampRows:  512,
		GPUMemBytes:         80e9,
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.NumMachines < 1:
		return fmt.Errorf("topology: NumMachines %d < 1", s.NumMachines)
	case s.GPUsPerNode < 1:
		return fmt.Errorf("topology: GPUsPerNode %d < 1", s.GPUsPerNode)
	case s.GPUsPerPCIe < 1 || s.GPUsPerNode%s.GPUsPerPCIe != 0:
		return fmt.Errorf("topology: GPUsPerPCIe %d must divide GPUsPerNode %d", s.GPUsPerPCIe, s.GPUsPerNode)
	case s.NVLinkBps <= 0 || s.PCIeBps <= 0 || s.NICBps <= 0:
		return fmt.Errorf("topology: link capacities must be positive")
	case s.GPUFlops <= 0:
		return fmt.Errorf("topology: GPUFlops must be positive")
	case s.A2AEfficiency <= 0 || s.A2AEfficiency > 1:
		return fmt.Errorf("topology: A2AEfficiency %v outside (0,1]", s.A2AEfficiency)
	case s.AllReduceEfficiency <= 0 || s.AllReduceEfficiency > 1:
		return fmt.Errorf("topology: AllReduceEfficiency %v outside (0,1]", s.AllReduceEfficiency)
	case s.PullEfficiency <= 0 || s.PullEfficiency > 1:
		return fmt.Errorf("topology: PullEfficiency %v outside (0,1]", s.PullEfficiency)
	case s.MemcpyEfficiency <= 0 || s.MemcpyEfficiency > 1:
		return fmt.Errorf("topology: MemcpyEfficiency %v outside (0,1]", s.MemcpyEfficiency)
	case s.PullLatency < 0:
		return fmt.Errorf("topology: PullLatency %v negative", s.PullLatency)
	case s.FetchOpBps < 0:
		return fmt.Errorf("topology: FetchOpBps %v negative", s.FetchOpBps)
	case s.FetchOpLatency < 0:
		return fmt.Errorf("topology: FetchOpLatency %v negative", s.FetchOpLatency)
	}
	return nil
}

// TotalGPUs returns NumMachines × GPUsPerNode.
func (s Spec) TotalGPUs() int { return s.NumMachines * s.GPUsPerNode }

// GPU is one worker: a global rank, its machine, and the fabric links
// and compute resource attached to it.
type GPU struct {
	Global  int // global rank
	Local   int // rank within machine
	Machine *Machine

	Compute *sim.Processor

	// NVSwitch port (intra-machine GPU<->GPU traffic).
	NVOut, NVIn *fabric.Link
	// Lane to this GPU's PCIe switch (GDR traffic and host copies).
	ToSwitch, FromSwitch *fabric.Link
}

// PCIeSwitchIndex returns the index of the PCIe switch this GPU hangs off.
func (g *GPU) PCIeSwitchIndex() int { return g.Local / g.Machine.Cluster.Spec.GPUsPerPCIe }

// Peers returns the other GPUs on the same PCIe switch (for A100, the
// single peer GPU sharing the switch and NIC).
func (g *GPU) Peers() []*GPU {
	var peers []*GPU
	s := g.PCIeSwitchIndex()
	for _, o := range g.Machine.GPUs {
		if o != g && o.PCIeSwitchIndex() == s {
			peers = append(peers, o)
		}
	}
	return peers
}

// String returns "m<machine>g<local>".
func (g *GPU) String() string { return fmt.Sprintf("m%dg%d", g.Machine.Index, g.Local) }

// PCIeSwitch aggregates the host-side links of one PCIe switch: the
// lanes to the CPU and the NIC hanging off the switch.
type PCIeSwitch struct {
	Index          int
	ToCPU, FromCPU *fabric.Link
	NICOut, NICIn  *fabric.Link
}

// Machine is one server: GPUs, PCIe switches, and a host CPU used by the
// Inter-Node Scheduler (cache manager, gradient pre-reduce).
type Machine struct {
	Index    int
	Cluster  *Cluster
	GPUs     []*GPU
	Switches []*PCIeSwitch
	CPU      *sim.Processor
}

// Cluster is the full testbed: machines joined by a non-blocking spine
// (per-NIC ingress/egress links are the only inter-machine resources,
// which models a full-bisection fabric).
type Cluster struct {
	Spec     Spec
	Engine   *sim.Engine
	Net      *fabric.Network
	Machines []*Machine

	gpus []*GPU // flat, by global rank
}

// New builds a cluster over a fresh engine and network.
func New(spec Spec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	return NewOn(eng, fabric.NewNetwork(eng), spec)
}

// NewOn builds a cluster over an existing engine and network, allowing
// callers to share one simulation across additional resources.
func NewOn(eng *sim.Engine, net *fabric.Network, spec Spec) (*Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Spec: spec, Engine: eng, Net: net}
	if spec.AllocMode != fabric.ModeIncremental {
		// A zero-value spec leaves a shared network's mode untouched;
		// an explicit mode is authoritative.
		net.SetAllocMode(spec.AllocMode)
	}
	for mi := 0; mi < spec.NumMachines; mi++ {
		m := &Machine{Index: mi, Cluster: c}
		m.CPU = sim.NewProcessor(eng, fmt.Sprintf("m%d.cpu", mi))
		nSw := spec.GPUsPerNode / spec.GPUsPerPCIe
		for si := 0; si < nSw; si++ {
			sw := &PCIeSwitch{Index: si}
			sw.ToCPU = net.NewLink(fmt.Sprintf("m%d.sw%d->cpu", mi, si), "pcie-host", spec.PCIeBps, spec.PCIeLatency)
			sw.FromCPU = net.NewLink(fmt.Sprintf("m%d.cpu->sw%d", mi, si), "pcie-host", spec.PCIeBps, spec.PCIeLatency)
			// NIC links are the spine attachment — the only inter-machine
			// resources — so they are the hierarchical mode's trunk core;
			// the mark is inert under every other allocator.
			sw.NICOut = net.NewLink(fmt.Sprintf("m%d.nic%d.out", mi, si), "nic", spec.NICBps, spec.NICLatency).MarkTrunk()
			sw.NICIn = net.NewLink(fmt.Sprintf("m%d.nic%d.in", mi, si), "nic", spec.NICBps, spec.NICLatency).MarkTrunk()
			m.Switches = append(m.Switches, sw)
		}
		for li := 0; li < spec.GPUsPerNode; li++ {
			g := &GPU{Global: mi*spec.GPUsPerNode + li, Local: li, Machine: m}
			g.Compute = sim.NewProcessor(eng, fmt.Sprintf("m%dg%d", mi, li))
			g.NVOut = net.NewLink(fmt.Sprintf("m%dg%d.nv.out", mi, li), "nvlink", spec.NVLinkBps, spec.NVLinkLatency)
			g.NVIn = net.NewLink(fmt.Sprintf("m%dg%d.nv.in", mi, li), "nvlink", spec.NVLinkBps, spec.NVLinkLatency)
			g.ToSwitch = net.NewLink(fmt.Sprintf("m%dg%d.pcie.up", mi, li), "pcie-gpu", spec.PCIeBps, spec.PCIeLatency)
			g.FromSwitch = net.NewLink(fmt.Sprintf("m%dg%d.pcie.down", mi, li), "pcie-gpu", spec.PCIeBps, spec.PCIeLatency)
			m.GPUs = append(m.GPUs, g)
			c.gpus = append(c.gpus, g)
		}
		c.Machines = append(c.Machines, m)
	}
	return c, nil
}

// GPU returns the GPU with the given global rank.
func (c *Cluster) GPU(global int) *GPU { return c.gpus[global] }

// GPUs returns all GPUs in global-rank order. The slice is shared.
func (c *Cluster) GPUs() []*GPU { return c.gpus }

// NumGPUs returns the total GPU count.
func (c *Cluster) NumGPUs() int { return len(c.gpus) }

// switchOf returns the PCIe switch a GPU hangs off.
func switchOf(g *GPU) *PCIeSwitch { return g.Machine.Switches[g.PCIeSwitchIndex()] }

// PathGPUToGPU routes device-to-device traffic. Intra-machine traffic
// crosses the NVSwitch (src egress port, dst ingress port); inter-machine
// traffic uses GPUDirect RDMA: src GPU -> its PCIe switch -> its NIC ->
// spine -> dst NIC -> dst PCIe switch -> dst GPU. A nil path (src == dst)
// means a local no-op.
func (c *Cluster) PathGPUToGPU(src, dst *GPU) []*fabric.Link {
	if src == dst {
		return nil
	}
	if src.Machine == dst.Machine {
		return []*fabric.Link{src.NVOut, dst.NVIn}
	}
	return []*fabric.Link{
		src.ToSwitch, switchOf(src).NICOut,
		switchOf(dst).NICIn, dst.FromSwitch,
	}
}

// PathGPUToLocalCPU routes a device-to-host copy (e.g. offloading a used
// expert out of the credit buffer).
func (c *Cluster) PathGPUToLocalCPU(src *GPU) []*fabric.Link {
	return []*fabric.Link{src.ToSwitch, switchOf(src).ToCPU}
}

// PathLocalCPUToGPU routes a host-to-device copy (stage 2 of the fetch:
// Cache Manager -> worker).
func (c *Cluster) PathLocalCPUToGPU(dst *GPU) []*fabric.Link {
	return []*fabric.Link{switchOf(dst).FromCPU, dst.FromSwitch}
}

// PathGPUToRemoteCPU routes an expert pull from a remote source GPU into
// this machine's CPU cache (stage 1 of the hierarchical fetch): src GPU
// -> src PCIe switch -> src NIC -> spine -> chosen local NIC -> local
// PCIe switch -> CPU. viaNIC selects which of the destination machine's
// NICs terminates the transfer; the Inter-Node Scheduler stripes experts
// across NICs with it.
func (c *Cluster) PathGPUToRemoteCPU(src *GPU, dst *Machine, viaNIC int) []*fabric.Link {
	dsw := dst.Switches[viaNIC%len(dst.Switches)]
	return []*fabric.Link{
		src.ToSwitch, switchOf(src).NICOut,
		dsw.NICIn, dsw.ToCPU,
	}
}

// PathCPUToRemoteGPU routes a pre-reduced gradient push from this
// machine's CPU back to the expert's owner GPU on a remote machine.
func (c *Cluster) PathCPUToRemoteGPU(src *Machine, viaNIC int, dst *GPU) []*fabric.Link {
	ssw := src.Switches[viaNIC%len(src.Switches)]
	return []*fabric.Link{
		ssw.FromCPU, ssw.NICOut,
		switchOf(dst).NICIn, dst.FromSwitch,
	}
}

// InterNodeLinks returns all NIC links, the resources whose carried
// bytes define "cross-machine traffic" in the paper's Table 1 metric.
func (c *Cluster) InterNodeLinks() []*fabric.Link {
	var out []*fabric.Link
	for _, m := range c.Machines {
		for _, sw := range m.Switches {
			out = append(out, sw.NICOut, sw.NICIn)
		}
	}
	return out
}

// InterNodeEgressBytes returns total bytes sent out of all machines'
// NICs (one direction only, so a transfer is not double-counted).
func (c *Cluster) InterNodeEgressBytes() float64 {
	c.Net.Sync()
	var sum float64
	for _, m := range c.Machines {
		for _, sw := range m.Switches {
			sum += sw.NICOut.CarriedBytes()
		}
	}
	return sum
}

// MachineEgressBytes returns bytes sent out of one machine's NICs.
func (c *Cluster) MachineEgressBytes(mi int) float64 {
	c.Net.Sync()
	var sum float64
	for _, sw := range c.Machines[mi].Switches {
		sum += sw.NICOut.CarriedBytes()
	}
	return sum
}
