package tensor

import (
	"math/rand"
	"testing"
)

// TestBlockedKernelsBitIdentical property-tests the cache-blocked
// kernels directly (bypassing shape selection, so small shapes exercise
// partial tiles and odd remainders too) against the retained serial
// references. Bit equality, not tolerance: blocking must not reorder a
// single addition.
func TestBlockedKernelsBitIdentical(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1},
		{3, blockK - 1, 5},
		{7, blockK, blockJ},
		{9, blockK + 1, blockJ + 1},
		{17, 2*blockK + 13, 2*blockJ + 7},
		{33, 200, 97},
	}
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		r := 1 + rng.Intn(60)
		k := 1 + rng.Intn(300)
		c := 1 + rng.Intn(300)
		shapes = append(shapes, [3]int{r, k, c})
	}
	for _, sh := range shapes {
		r, k, c := sh[0], sh[1], sh[2]
		rng := rand.New(rand.NewSource(int64(r*1000003 + k*1009 + c)))

		a := randomSparse(rng, r, k)
		b := randomSparse(rng, k, c)
		got := New(r, c)
		matMulRowsBlocked(a, b, got, 0, r)
		if want := matMulSerial(a, b); !Equal(got, want) {
			t.Fatalf("blocked MatMul %dx%d·%dx%d diverges from serial (maxdiff %v)",
				r, k, k, c, MaxAbsDiff(got, want))
		}

		at := randomSparse(rng, k, r)
		gotA := New(r, c)
		matMulTransARowsBlocked(at, b, gotA, 0, r)
		if want := matMulTransASerial(at, b); !Equal(gotA, want) {
			t.Fatalf("blocked MatMulTransA %dx%dᵀ·%dx%d diverges from serial (maxdiff %v)",
				k, r, k, c, MaxAbsDiff(gotA, want))
		}

		bt := randomSparse(rng, c, k)
		gotB := New(r, c)
		// Poison the output: the TransB contract is full overwrite, so
		// the blocked kernel must not fold leftovers into tile 0.
		for i := range gotB.Data {
			gotB.Data[i] = 1e30
		}
		matMulTransBRowsBlocked(a, bt, gotB, 0, r)
		if want := matMulTransBSerial(a, bt); !Equal(gotB, want) {
			t.Fatalf("blocked MatMulTransB %dx%d·%dx%dᵀ diverges from serial (maxdiff %v)",
				r, k, c, k, MaxAbsDiff(gotB, want))
		}
	}
}

// TestBlockedKernelsRowRange checks that the blocked kernels respect a
// row partition: computing [0,mid) and [mid,rows) separately must land
// on the serial result, since parallelRows hands them exactly such
// ranges.
func TestBlockedKernelsRowRange(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	r, k, c := 45, 2*blockK+9, blockJ+33
	a := randomSparse(rng, r, k)
	b := randomSparse(rng, k, c)
	got := New(r, c)
	mid := r / 3
	matMulRowsBlocked(a, b, got, mid, r)
	matMulRowsBlocked(a, b, got, 0, mid)
	if want := matMulSerial(a, b); !Equal(got, want) {
		t.Fatalf("blocked MatMul split rows diverge from serial (maxdiff %v)", MaxAbsDiff(got, want))
	}
}

// TestBlockedSelectionBitIdentical drives the public Into entry points
// at a shape large enough to select the blocked kernels and pins the
// result to the serial references — the selection itself must be
// invisible in the bits.
func TestBlockedSelectionBitIdentical(t *testing.T) {
	r, k, c := 40, blockedMinK * 2, blockedMinFoot/blockedMinK + 8
	if !useBlocked(k, k*c) {
		t.Fatalf("shape %dx%dx%d should select the blocked kernel", r, k, c)
	}
	rng := rand.New(rand.NewSource(11))
	a := randomSparse(rng, r, k)
	b := randomSparse(rng, k, c)
	out := New(r, c)
	MatMulInto(a, b, out)
	if want := matMulSerial(a, b); !Equal(out, want) {
		t.Fatalf("MatMulInto blocked selection diverges from serial (maxdiff %v)", MaxAbsDiff(out, want))
	}

	at := randomSparse(rng, k, r)
	outA := New(r, c)
	MatMulTransAInto(at, b, outA)
	if want := matMulTransASerial(at, b); !Equal(outA, want) {
		t.Fatalf("MatMulTransAInto blocked selection diverges from serial (maxdiff %v)", MaxAbsDiff(outA, want))
	}

	bt := randomSparse(rng, c, k)
	outB := New(r, c)
	MatMulTransBInto(a, bt, outB)
	if want := matMulTransBSerial(a, bt); !Equal(outB, want) {
		t.Fatalf("MatMulTransBInto blocked selection diverges from serial (maxdiff %v)", MaxAbsDiff(outB, want))
	}
}
