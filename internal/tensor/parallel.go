// Row-partitioned parallel kernels and scratch-buffer pooling.
//
// Determinism argument: every kernel partitions work by *output row*,
// and each output row is written by exactly one worker running the
// identical per-row loop as the serial reference — the summation order
// within every output element is unchanged. Float addition is
// non-associative, so this is the one partitioning that is safe: the
// result is bit-identical to the serial kernel for any worker count,
// which parallel_test.go property-tests against the retained serial
// references. This preserves the repository's expert-centric ≡
// data-centric numerical equivalence proof (§3.2, §5.1.1).
package tensor

import (
	"runtime"
	"sync"
)

// maxKernelWorkers bounds the worker pool; beyond this the per-chunk
// coordination overhead outweighs the row-loop work for the matrix
// sizes this repository uses.
const maxKernelWorkers = 8

// minParRows is the smallest output-row count worth fanning out.
const minParRows = 32

var kernelPool struct {
	once    sync.Once
	workers int
	jobs    chan func()
}

func poolWorkers() int {
	kernelPool.once.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w > maxKernelWorkers {
			w = maxKernelWorkers
		}
		kernelPool.workers = w
		if w > 1 {
			kernelPool.jobs = make(chan func(), 4*w)
			for i := 0; i < w; i++ {
				go func() {
					for job := range kernelPool.jobs {
						job()
					}
				}()
			}
		}
	})
	return kernelPool.workers
}

// parallelRows runs fn over [0, rows) split into contiguous chunks, one
// chunk per pool worker, executing the last chunk on the caller. Serial
// when the pool has one worker or the row count is too small to pay for
// the fan-out. fn must touch only the rows it is given.
func parallelRows(rows int, fn func(lo, hi int)) {
	w := poolWorkers()
	if w == 1 || rows < minParRows {
		fn(0, rows)
		return
	}
	chunks := w
	if chunks > rows {
		chunks = rows
	}
	size := (rows + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo+size < rows {
		lo2, hi2 := lo, lo+size
		wg.Add(1)
		kernelPool.jobs <- func() {
			fn(lo2, hi2)
			wg.Done()
		}
		lo = hi2
	}
	fn(lo, rows) // caller takes the tail chunk
	wg.Wait()
}

// parallelMatRows is parallelRows specialised to the three-matrix
// kernels: the kernel arrives as a plain function value instead of a
// closure capturing a/b/out, so the serial fast path (one pool worker,
// or too few rows to pay for fan-out) performs zero heap allocations —
// a closure handed to parallelRows escapes unconditionally because the
// parallel branch sends it into the job channel. The parallel path
// still builds its per-call closure; that cost is paid only when the
// fan-out actually happens.
func parallelMatRows(a, b, out *Matrix, rows int, kernel func(a, b, out *Matrix, lo, hi int)) {
	if poolWorkers() == 1 || rows < minParRows {
		kernel(a, b, out, 0, rows)
		return
	}
	parallelRows(rows, func(lo, hi int) { kernel(a, b, out, lo, hi) })
}

// --- kernels -------------------------------------------------------------

// matMulRows computes rows [lo, hi) of out = a·b, identically to the
// serial reference restricted to those rows.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// matMulTransARows computes output rows [lo, hi) of out = aᵀ·b. The
// serial reference iterates k outermost, so each out[i][j] accumulates
// its k-terms in ascending-k order; iterating k per output row keeps
// exactly that per-element order (including the a[k][i]==0 skips).
func matMulTransARows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		for k := 0; k < a.Rows; k++ {
			av := a.Data[k*a.Cols+i]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulTransBRows computes rows [lo, hi) of out = a·bᵀ: one
// sequential-accumulator dot product per output element, identical to
// the serial reference.
func matMulTransBRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
}

// --- scratch pooling ------------------------------------------------------

// matrixPool recycles backing arrays for transient matrices (activation
// scratch, gradient staging). Buffers are pooled by capacity class and
// zeroed on Get, so a pooled matrix is indistinguishable from New.
var matrixPool = sync.Pool{New: func() any { return &Matrix{} }}

// Get returns a zeroed rows×cols matrix, reusing pooled backing store
// when one large enough is available. Pair with Put when the matrix is
// no longer referenced.
func Get(rows, cols int) *Matrix {
	m := GetUninit(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// GetUninit is Get without the zero fill: the contents are arbitrary
// leftovers, so the caller must overwrite every element (fine for
// kernels like MatMulTransBInto or GeLUInto, wrong for accumulating
// ones like MatMulInto).
func GetUninit(rows, cols int) *Matrix {
	m := matrixPool.Get().(*Matrix)
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// Put recycles a matrix obtained from Get (or any matrix the caller
// owns outright). The caller must not use m afterwards.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	matrixPool.Put(m)
}
