//go:build !race

package tensor

// raceEnabled gates the allocation-regression tests; see the race
// variant of this file.
const raceEnabled = false
