package tensor

import (
	"math/rand"
	"testing"
)

// randomSparse draws a matrix with a mix of magnitudes and explicit
// zeros (the serial kernels skip zero multiplicands, so the skip path
// must be exercised too).
func randomSparse(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(4) {
		case 0:
			m.Data[i] = 0
		default:
			m.Data[i] = float32((rng.Float64()*2 - 1) * float64(uint(1)<<uint(rng.Intn(8))))
		}
	}
	return m
}

// TestParallelKernelsBitIdentical property-tests the row-partitioned
// kernels against the retained serial references across random shapes,
// including shapes above and below the parallel dispatch threshold.
func TestParallelKernelsBitIdentical(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		r := 1 + rng.Intn(90)
		k := 1 + rng.Intn(70)
		c := 1 + rng.Intn(50)

		a := randomSparse(rng, r, k)
		b := randomSparse(rng, k, c)
		if got, want := MatMul(a, b), matMulSerial(a, b); !Equal(got, want) {
			t.Fatalf("seed %d: MatMul %dx%d·%dx%d diverges from serial (maxdiff %v)",
				seed, r, k, k, c, MaxAbsDiff(got, want))
		}

		at := randomSparse(rng, k, r)
		if got, want := MatMulTransA(at, b), matMulTransASerial(at, b); !Equal(got, want) {
			t.Fatalf("seed %d: MatMulTransA diverges from serial (maxdiff %v)",
				seed, MaxAbsDiff(got, want))
		}

		bt := randomSparse(rng, c, k)
		if got, want := MatMulTransB(a, bt), matMulTransBSerial(a, bt); !Equal(got, want) {
			t.Fatalf("seed %d: MatMulTransB diverges from serial (maxdiff %v)",
				seed, MaxAbsDiff(got, want))
		}
	}
}

// TestIntoVariantsMatch checks the Into kernels on pooled, recycled
// buffers: a Get matrix that previously held other data must produce
// the same result as a fresh allocation.
func TestIntoVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSparse(rng, 65, 33)
	b := randomSparse(rng, 33, 41)

	dirty := Get(65, 41)
	for i := range dirty.Data {
		dirty.Data[i] = 99
	}
	Put(dirty)

	out := Get(65, 41)
	MatMulInto(a, b, out)
	if want := matMulSerial(a, b); !Equal(out, want) {
		t.Fatalf("MatMulInto on recycled buffer diverges (maxdiff %v)", MaxAbsDiff(out, want))
	}
	Put(out)

	at := randomSparse(rng, 33, 65)
	out2 := Get(65, 41)
	MatMulTransAInto(at, b, out2)
	if want := matMulTransASerial(at, b); !Equal(out2, want) {
		t.Fatalf("MatMulTransAInto on recycled buffer diverges (maxdiff %v)", MaxAbsDiff(out2, want))
	}
	Put(out2)

	bt := randomSparse(rng, 41, 33)
	out3 := Get(65, 41)
	MatMulTransBInto(a, bt, out3)
	if want := matMulTransBSerial(a, bt); !Equal(out3, want) {
		t.Fatalf("MatMulTransBInto on recycled buffer diverges (maxdiff %v)", MaxAbsDiff(out3, want))
	}
	Put(out3)
}

// TestGetReturnsZeroed guards the pooling contract the accumulating
// kernels rely on.
func TestGetReturnsZeroed(t *testing.T) {
	m := Get(8, 8)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	Put(m)
	m2 := Get(4, 4)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("Get returned dirty buffer at %d: %v", i, v)
		}
	}
	Put(m2)
}
