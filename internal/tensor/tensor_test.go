package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := New(2, 3)
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	b := New(3, 2)
	copy(b.Data, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: MatMulTransA(a, b) equals MatMul(transpose(a), b), and
// MatMulTransB(a, b) equals MatMul(a, transpose(b)).
func TestTransposedMatMulsProperty(t *testing.T) {
	transpose := func(m *Matrix) *Matrix {
		out := New(m.Cols, m.Rows)
		for r := 0; r < m.Rows; r++ {
			for c := 0; c < m.Cols; c++ {
				out.Set(c, r, m.At(r, c))
			}
		}
		return out
	}
	prop := func(seed int64, r8, k8, c8 uint8) bool {
		r, k, c := int(r8%6)+1, int(k8%6)+1, int(c8%6)+1
		a := NewRandom(k, r, 1, seed)
		b := NewRandom(k, c, 1, seed+1)
		viaTrans := MatMulTransA(a, b)
		direct := MatMul(transpose(a), b)
		if MaxAbsDiff(viaTrans, direct) > 1e-5 {
			return false
		}
		x := NewRandom(r, k, 1, seed+2)
		y := NewRandom(c, k, 1, seed+3)
		viaTransB := MatMulTransB(x, y)
		directB := MatMul(x, transpose(y))
		return MaxAbsDiff(viaTransB, directB) > -1 && MaxAbsDiff(viaTransB, directB) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over row-partitioning — computing A·B
// for a vertically split A and stacking equals computing it whole. This
// is the algebraic heart of paradigm equivalence: processing tokens in
// worker-sized groups changes nothing.
func TestRowPartitionInvarianceProperty(t *testing.T) {
	prop := func(seed int64, r8, k8, c8, cut8 uint8) bool {
		r, k, c := int(r8%8)+2, int(k8%6)+1, int(c8%6)+1
		cut := int(cut8)%(r-1) + 1
		a := NewRandom(r, k, 1, seed)
		b := NewRandom(k, c, 1, seed+1)
		whole := MatMul(a, b)
		top := &Matrix{Rows: cut, Cols: k, Data: a.Data[:cut*k]}
		bot := &Matrix{Rows: r - cut, Cols: k, Data: a.Data[cut*k:]}
		t1, t2 := MatMul(top, b), MatMul(bot, b)
		for i := range t1.Data {
			if t1.Data[i] != whole.Data[i] {
				return false
			}
		}
		for i := range t2.Data {
			if t2.Data[i] != whole.Data[cut*c+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeLUValues(t *testing.T) {
	m := New(1, 3)
	copy(m.Data, []float32{-2, 0, 2})
	g := GeLU(m)
	if g.Data[1] != 0 {
		t.Fatalf("gelu(0) = %v, want 0", g.Data[1])
	}
	if !(g.Data[2] > 1.9 && g.Data[2] < 2.0) {
		t.Fatalf("gelu(2) = %v, want ~1.95", g.Data[2])
	}
	if !(g.Data[0] > -0.1 && g.Data[0] < 0) {
		t.Fatalf("gelu(-2) = %v, want ~-0.045", g.Data[0])
	}
}

// Property: GeLUGrad matches a numeric derivative.
func TestGeLUGradNumericProperty(t *testing.T) {
	prop := func(x100 int8) bool {
		x := float32(x100) / 25 // range [-5.12, 5.08]
		m := New(1, 1)
		m.Data[0] = x
		dy := New(1, 1)
		dy.Data[0] = 1
		analytic := float64(GeLUGrad(m, dy).Data[0])
		const h = 1e-3
		numeric := (float64(gelu(x+h)) - float64(gelu(x-h))) / (2 * h)
		return math.Abs(analytic-numeric) < 1e-2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float32{1, 2, 3, 1000, 1000, 1000})
	s := SoftmaxRows(m)
	var sum float64
	for _, v := range s.Row(0) {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("softmax row sum = %v", sum)
	}
	if !(s.At(0, 2) > s.At(0, 1) && s.At(0, 1) > s.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	for _, v := range s.Row(1) {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("large-value softmax unstable: %v", s.Row(1))
		}
	}
}

func TestTopKRow(t *testing.T) {
	m := New(1, 5)
	copy(m.Data, []float32{0.1, 0.9, 0.5, 0.9, 0.2})
	idx := TopKRow(m, 0, 3)
	if idx[0] != 1 || idx[1] != 3 || idx[2] != 2 {
		t.Fatalf("topk = %v, want [1 3 2] (ties break by index)", idx)
	}
}

func TestHelpers(t *testing.T) {
	m := NewRandom(3, 4, 1, 1)
	c := m.Clone()
	if !Equal(m, c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 99)
	if Equal(m, c) {
		t.Fatal("clone shares storage")
	}
	c2 := New(3, 4)
	c2.CopyRow(1, m, 2)
	for j := 0; j < 4; j++ {
		if c2.At(1, j) != m.At(2, j) {
			t.Fatal("CopyRow wrong")
		}
	}
	s := m.Clone()
	s.Scale(2)
	if s.At(1, 1) != 2*m.At(1, 1) {
		t.Fatal("Scale wrong")
	}
	a := m.Clone()
	a.AddInPlace(m)
	if a.At(2, 2) != 2*m.At(2, 2) {
		t.Fatal("AddInPlace wrong")
	}
	r := New(1, 4)
	r.AddScaledRow(0, m.Row(0), 0.5)
	if r.At(0, 1) != 0.5*m.At(0, 1) {
		t.Fatal("AddScaledRow wrong")
	}
	if Equal(New(1, 2), New(2, 1)) {
		t.Fatal("shape-mismatched matrices equal")
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(4, 4, 0.5, 42)
	b := NewRandom(4, 4, 0.5, 42)
	if !Equal(a, b) {
		t.Fatal("same seed differs")
	}
	for _, v := range a.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("value %v out of scale", v)
		}
	}
}
