package tensor

import "testing"

func TestRowSliceAliasesParent(t *testing.T) {
	m := NewRandom(6, 4, 1, 99)
	v := m.RowSlice(2, 5)
	if v.Rows != 3 || v.Cols != 4 {
		t.Fatalf("view shape %dx%d, want 3x4", v.Rows, v.Cols)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if v.At(r, c) != m.At(r+2, c) {
				t.Fatalf("view (%d,%d) != parent (%d,%d)", r, c, r+2, c)
			}
		}
	}
	v.Set(0, 0, 42)
	if m.At(2, 0) != 42 {
		t.Fatal("write through view not visible in parent")
	}
	m.Set(4, 3, -7)
	if v.At(2, 3) != -7 {
		t.Fatal("write through parent not visible in view")
	}
}

func TestRowSliceEmptyAndFull(t *testing.T) {
	m := New(3, 2)
	if v := m.RowSlice(0, 3); v.Rows != 3 {
		t.Fatalf("full view has %d rows", v.Rows)
	}
	if v := m.RowSlice(1, 1); v.Rows != 0 {
		t.Fatalf("empty view has %d rows", v.Rows)
	}
}

func TestRowSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RowSlice(1, 5) on 3 rows did not panic")
		}
	}()
	New(3, 2).RowSlice(1, 5)
}
