// Cache-blocked matmul kernels, selected by shape beside the
// row-parallel ones.
//
// The row kernels stream the full right-hand operand once per output
// row; when that operand no longer fits in L1/L2 the stream becomes a
// cache-miss loop. The blocked kernels tile the reduction dimension
// (blockK) and the output columns (blockJ) so one operand tile stays
// hot across a whole row range — the CPU analogue of staging a tile in
// shared memory on an accelerator.
//
// Determinism argument, extending parallel.go's: blocking reorders
// which (row, column-tile) pair is visited when, but for any single
// output element out[i][j] the reduction terms are still added to one
// accumulator in ascending-k order with the same zero skips and the
// same per-term expression as the serial reference. Float addition is
// applied term by term (a strict left fold) in both versions, and Go
// rounds every float32 operation individually, so storing the running
// sum to memory between k-tiles cannot change a single bit.
// blocked_test.go property-tests all three kernels bitwise against the
// retained serial references.
package tensor

const (
	// blockK is the reduction-dimension tile: how many rows of the
	// streamed operand are kept hot per pass.
	blockK = 64
	// blockJ is the output-column tile, sized so one tile of the
	// output row plus one tile of the operand row stay in L1.
	blockJ = 256
	// blockedMinK and blockedMinFoot gate blocked-kernel selection:
	// below these the whole streamed operand fits in cache and the
	// row kernels' single pass is strictly cheaper.
	blockedMinK    = 128
	blockedMinFoot = 32 * 1024 // floats, ~128 KB: past L1, into L2
)

// useBlocked reports whether the blocked kernel wins for a reduction of
// depth k feeding rows×cols of streamed operand data.
func useBlocked(k, footprint int) bool {
	return k >= blockedMinK && footprint >= blockedMinFoot
}

// matMulRowsBlocked computes rows [lo, hi) of out = a·b with k- and
// j-tiling. Per output element the k-terms accumulate in ascending
// order exactly as matMulRows does: k-tiles are visited ascending and
// each element's column belongs to exactly one j-tile.
func matMulRowsBlocked(a, b, out *Matrix, lo, hi int) {
	n := out.Cols
	for k0 := 0; k0 < a.Cols; k0 += blockK {
		k1 := min(k0+blockK, a.Cols)
		for j0 := 0; j0 < n; j0 += blockJ {
			j1 := min(j0+blockJ, n)
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				orow := out.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Row(k)[j0:j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransARowsBlocked computes output rows [lo, hi) of out = aᵀ·b
// with k-tiling: a is read column-wise (stride a.Cols), so keeping a
// k-tile of a and b resident across the whole row range turns the
// strided re-reads into cache hits. Ascending k0 tiles with ascending k
// inside preserve matMulTransARows's per-element order and zero skips.
func matMulTransARowsBlocked(a, b, out *Matrix, lo, hi int) {
	n := b.Cols
	for k0 := 0; k0 < a.Rows; k0 += blockK {
		k1 := min(k0+blockK, a.Rows)
		for j0 := 0; j0 < n; j0 += blockJ {
			j1 := min(j0+blockJ, n)
			for i := lo; i < hi; i++ {
				orow := out.Row(i)[j0:j1]
				for k := k0; k < k1; k++ {
					av := a.Data[k*a.Cols+i]
					if av == 0 {
						continue
					}
					brow := b.Row(k)[j0:j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransBRowsBlocked computes rows [lo, hi) of out = a·bᵀ with
// k-tiling so a k-slice of b's rows is reused across the row range. The
// serial kernel folds each dot product left to right in one register;
// here the running sum parks in out[i][j] between k-tiles. Go rounds
// every float32 add individually, so the fold — first tile from an
// explicit zero (out need not arrive zeroed), later tiles resuming from
// the stored partial — adds the same terms in the same order to the
// same accumulator value and is bit-identical.
func matMulTransBRowsBlocked(a, b, out *Matrix, lo, hi int) {
	for k0 := 0; k0 < a.Cols; k0 += blockK {
		k1 := min(k0+blockK, a.Cols)
		first := k0 == 0
		for i := lo; i < hi; i++ {
			arow := a.Row(i)[k0:k1]
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)[k0:k1]
				var sum float32
				if !first {
					sum = orow[j]
				}
				for k := range arow {
					sum += arow[k] * brow[k]
				}
				orow[j] = sum
			}
		}
	}
}
