// Package tensor is a minimal dense float32 matrix library: just enough
// real linear algebra to execute an MoE block's forward and backward
// passes numerically, so the repository can *prove* (rather than assert)
// that the expert-centric and data-centric paradigms compute identical
// results (§3.2 and §5.1.1 of the Janus paper).
//
// Correctness, determinism and zero dependencies come first. The
// summation order of every reduction is fixed, so results are exactly
// reproducible: the matmul kernels fan output rows across a bounded
// worker pool (see parallel.go), which leaves every per-element
// summation order untouched and therefore stays bit-identical to the
// retained serial reference kernels — property-tested, not assumed.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewRandom returns a matrix filled with deterministic pseudo-random
// values in [-scale, scale) from the given seed.
func NewRandom(rows, cols int, scale float64, seed int64) *Matrix {
	m := New(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// RowSlice returns a view of rows [lo, hi): it shares m's backing
// storage, so writes through either alias are visible to both and the
// view costs no copy (rows are contiguous in row-major layout). A view
// must never be handed to Put — only the owning matrix may be recycled.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// CopyRow copies row src of from into row dst of m.
func (m *Matrix) CopyRow(dst int, from *Matrix, src int) {
	if m.Cols != from.Cols {
		panic("tensor: CopyRow column mismatch")
	}
	copy(m.Row(dst), from.Row(src))
}

// AddInPlace accumulates other into m element-wise.
func (m *Matrix) AddInPlace(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// AddScaledRow adds scale*src (a row vector) into row dst of m.
func (m *Matrix) AddScaledRow(dst int, src []float32, scale float32) {
	row := m.Row(dst)
	if len(row) != len(src) {
		panic("tensor: AddScaledRow length mismatch")
	}
	for i := range row {
		row[i] += scale * src[i]
	}
}

// Scale multiplies every element by s.
// Zero overwrites every element with 0, making a reused matrix
// indistinguishable from a fresh New of the same shape.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MatMul returns a·b with shapes (r×k)·(k×c) → (r×c).
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a·b into out, which must be zero-filled (Get
// returns such matrices) with shape a.Rows×b.Cols.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if useBlocked(a.Cols, a.Cols*b.Cols) {
		parallelMatRows(a, b, out, a.Rows, matMulRowsBlocked)
		return
	}
	parallelMatRows(a, b, out, a.Rows, matMulRows)
}

// matMulSerial is the pre-parallelization reference kernel, retained
// for the bit-identity property tests.
func matMulSerial(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b with shapes (k×r)ᵀ·(k×c) → (r×c). Used for
// weight gradients (dW = Xᵀ·dY).
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(a, b, out)
	return out
}

// MatMulTransAInto computes aᵀ·b into out, which must be zero-filled
// with shape a.Cols×b.Cols.
func MatMulTransAInto(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	if useBlocked(a.Rows, a.Rows*b.Cols) {
		parallelMatRows(a, b, out, a.Cols, matMulTransARowsBlocked)
		return
	}
	parallelMatRows(a, b, out, a.Cols, matMulTransARows)
}

// matMulTransASerial is the pre-parallelization reference kernel,
// retained for the bit-identity property tests.
func matMulTransASerial(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a·bᵀ with shapes (r×k)·(c×k)ᵀ → (r×c). Used for
// input gradients (dX = dY·Wᵀ).
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(a, b, out)
	return out
}

// MatMulTransBInto computes a·bᵀ into out with shape a.Rows×b.Rows.
// Every element is fully overwritten, so out need not be zeroed.
func MatMulTransBInto(a, b, out *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if useBlocked(a.Cols, b.Rows*b.Cols) {
		parallelMatRows(a, b, out, a.Rows, matMulTransBRowsBlocked)
		return
	}
	parallelMatRows(a, b, out, a.Rows, matMulTransBRows)
}

// matMulTransBSerial is the pre-parallelization reference kernel,
// retained for the bit-identity property tests.
func matMulTransBSerial(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum float32
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// GeLU applies the tanh-approximation GeLU element-wise, returning a new
// matrix.
func GeLU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	GeLUInto(m, out)
	return out
}

// GeLUInto applies GeLU element-wise into out, overwriting every
// element (out need not be zeroed).
func GeLUInto(m, out *Matrix) {
	if m.Rows != out.Rows || m.Cols != out.Cols {
		panic("tensor: GeLUInto shape mismatch")
	}
	for i, x := range m.Data {
		out.Data[i] = gelu(x)
	}
}

// GeLUGrad returns dx given pre-activation x and upstream gradient dy:
// dx = dy ⊙ gelu'(x).
func GeLUGrad(x, dy *Matrix) *Matrix {
	out := New(x.Rows, x.Cols)
	GeLUGradInto(x, dy, out)
	return out
}

// GeLUGradInto computes dy ⊙ gelu'(x) into out, overwriting every
// element (out need not be zeroed).
func GeLUGradInto(x, dy, out *Matrix) {
	if x.Rows != dy.Rows || x.Cols != dy.Cols || x.Rows != out.Rows || x.Cols != out.Cols {
		panic("tensor: GeLUGrad shape mismatch")
	}
	for i := range x.Data {
		out.Data[i] = dy.Data[i] * geluPrime(x.Data[i])
	}
}

const (
	sqrt2OverPi = 0.7978845608028654
	geluC       = 0.044715
)

func gelu(x float32) float32 {
	xf := float64(x)
	inner := sqrt2OverPi * (xf + geluC*xf*xf*xf)
	return float32(0.5 * xf * (1 + math.Tanh(inner)))
}

func geluPrime(x float32) float32 {
	xf := float64(x)
	inner := sqrt2OverPi * (xf + geluC*xf*xf*xf)
	t := math.Tanh(inner)
	dInner := sqrt2OverPi * (1 + 3*geluC*xf*xf)
	return float32(0.5*(1+t) + 0.5*xf*(1-t*t)*dInner)
}

// SoftmaxRows applies a numerically-stable softmax to each row,
// returning a new matrix.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		orow := out.Row(r)
		for i, v := range row {
			e := math.Exp(float64(v - max))
			orow[i] = float32(e)
			sum += e
		}
		for i := range orow {
			orow[i] = float32(float64(orow[i]) / sum)
		}
	}
	return out
}

// TopKRow returns the indices of the k largest values of row r, in
// descending value order with index order breaking ties (deterministic).
func TopKRow(m *Matrix, r, k int) []int {
	if k > m.Cols {
		panic("tensor: TopKRow k exceeds columns")
	}
	row := m.Row(r)
	idx := make([]int, 0, k)
	taken := make([]bool, m.Cols)
	for n := 0; n < k; n++ {
		best := -1
		for i, v := range row {
			if taken[i] {
				continue
			}
			if best < 0 || v > row[best] {
				best = i
			}
		}
		taken[best] = true
		idx = append(idx, best)
	}
	return idx
}

// Equal reports whether two matrices have identical shape and
// bit-identical contents.
func Equal(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference.
// Panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}
