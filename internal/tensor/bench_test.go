package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32() - 0.5
	}
	return m
}

// BenchmarkMatMul measures the dispatching kernel: row-partitioned
// across the worker pool when GOMAXPROCS allows, bit-identical to the
// serial reference either way.
func BenchmarkMatMul(b *testing.B) {
	a := benchMatrix(256, 256, 1)
	c := benchMatrix(256, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

// BenchmarkMatMulSerial pins the retained pre-parallelization
// reference kernel, the baseline the dispatching kernel is property-
// tested against.
func BenchmarkMatMulSerial(b *testing.B) {
	a := benchMatrix(256, 256, 1)
	c := benchMatrix(256, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matMulSerial(a, c)
	}
}

// BenchmarkMatMulIntoPooled is the steady-state shape of the moe
// forward/backward path: output taken from the scratch pool, so the
// hot loop allocates nothing.
func BenchmarkMatMulIntoPooled(b *testing.B) {
	a := benchMatrix(256, 256, 1)
	c := benchMatrix(256, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := GetUninit(256, 256)
		MatMulInto(a, c, out)
		Put(out)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	a := benchMatrix(256, 256, 1)
	c := benchMatrix(256, 256, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(a, c)
	}
}
