package tensor

import (
	"runtime/debug"
	"testing"
)

// The zero-alloc kernel gates: MatMulInto and its transpose variants
// into pooled outputs must not touch the heap once the pools are warm.
// The shapes used are below minParRows, so the serial fast path of
// parallelMatRows is taken deterministically on any machine — the
// parallel fan-out path allocates its chunk closures by design and is
// exercised by the throughput benchmarks instead.

// allocsSteadyState reports the average allocations of fn after a
// warm-up run, with GC disabled so sync.Pool victims are not cleared
// mid-measurement.
func allocsSteadyState(fn func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	fn() // warm pools
	var n float64
	for attempt := 0; attempt < 3; attempt++ {
		// AllocsPerRun counts process-global mallocs; retry while
		// nonzero so a stray allocation from another test's
		// winding-down goroutine cannot fail the gate. A real per-op
		// leak fails every attempt deterministically.
		n = testing.AllocsPerRun(100, fn)
		if n == 0 {
			return 0
		}
	}
	return n
}

func TestMatMulIntoPooledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	a := New(8, 16)
	b := New(16, 24)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float32(i%5) - 2
	}
	out := Get(8, 24)
	defer Put(out)
	if n := allocsSteadyState(func() { MatMulInto(a, b, out) }); n != 0 {
		t.Fatalf("MatMulInto: %v allocs/op in steady state, want 0", n)
	}
}

func TestMatMulTransAIntoPooledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	a := New(16, 8)
	b := New(16, 24)
	out := Get(8, 24)
	defer Put(out)
	if n := allocsSteadyState(func() { MatMulTransAInto(a, b, out) }); n != 0 {
		t.Fatalf("MatMulTransAInto: %v allocs/op in steady state, want 0", n)
	}
}

func TestMatMulTransBIntoPooledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	a := New(8, 16)
	b := New(24, 16)
	out := Get(8, 24)
	defer Put(out)
	if n := allocsSteadyState(func() { MatMulTransBInto(a, b, out) }); n != 0 {
		t.Fatalf("MatMulTransBInto: %v allocs/op in steady state, want 0", n)
	}
}
