package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpansAndMarks(t *testing.T) {
	var tl Timeline
	tl.AddSpan("gpu0", "attn", 0, 1)
	tl.AddSpan("gpu0", "ffn", 1, 3)
	tl.AddSpan("gpu1", "attn", 0, 2)
	tl.AddMark("block0.done", 3)
	tl.AddMark("block1.done", 5)

	spans := tl.SpansOn("gpu0")
	if len(spans) != 2 || spans[0].Name != "attn" || spans[1].Name != "ffn" {
		t.Fatalf("gpu0 spans = %v", spans)
	}
	if got := tl.BusyOn("gpu0"); got != 3 {
		t.Fatalf("busy = %v, want 3", got)
	}
	if got := tl.End(); got != 5 {
		t.Fatalf("end = %v, want 5", got)
	}
	marks := tl.MarksNamed("block")
	if len(marks) != 2 || marks[0].At != 3 {
		t.Fatalf("marks = %v", marks)
	}
	at, ok := tl.MarkAt("block1.done")
	if !ok || at != 5 {
		t.Fatalf("MarkAt = %v %v", at, ok)
	}
	if _, ok := tl.MarkAt("nope"); ok {
		t.Fatal("missing mark found")
	}
}

func TestMarkAtReturnsEarliest(t *testing.T) {
	var tl Timeline
	tl.AddMark("x", 7)
	tl.AddMark("x", 3)
	at, ok := tl.MarkAt("x")
	if !ok || at != 3 {
		t.Fatalf("MarkAt = %v, want 3", at)
	}
}

func TestInvalidSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reversed span did not panic")
		}
	}()
	var tl Timeline
	tl.AddSpan("gpu0", "bad", 2, 1)
}

func TestGanttRendering(t *testing.T) {
	var tl Timeline
	tl.AddSpan("gpu0", "attn", 0, 0.5)
	tl.AddSpan("gpu0", "ffn", 0.5, 1.0)
	out := tl.Gantt([]string{"gpu0"}, 20)
	if !strings.Contains(out, "gpu0") {
		t.Fatalf("gantt missing resource row:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "f") {
		t.Fatalf("gantt missing span glyphs:\n%s", out)
	}
	if tl.Gantt(nil, 0) != "" {
		t.Fatal("degenerate gantt not empty")
	}
}

func TestCSV(t *testing.T) {
	var tl Timeline
	tl.AddSpan("gpu0", "op", 0, 1)
	tl.AddMark("done", 1)
	csv := tl.CSV()
	if !strings.HasPrefix(csv, "resource,name,start,end\n") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "gpu0,op,") || !strings.Contains(csv, "mark,done,") {
		t.Fatalf("csv rows missing:\n%s", csv)
	}
}

func TestChromeJSON(t *testing.T) {
	var tl Timeline
	tl.AddSpan("gpu0", "attn", 0, 0.001)
	tl.AddSpan("gpu1", "ffn", 0.001, 0.003)
	tl.AddMark("done", 0.003)
	out, err := tl.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(out, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var spans, marks int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) <= 0 {
				t.Fatal("span with no duration")
			}
		case "i":
			marks++
		}
	}
	if spans != 2 || marks != 1 {
		t.Fatalf("spans=%d marks=%d", spans, marks)
	}
}
