// Package trace records simulation timelines: named spans on named
// resources (compute ops on GPUs, transfers on links) and point marks
// (block completions, expert arrivals). Figure 13 of the paper is a
// rendering of exactly this data.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Span is a half-open interval [Start, End) of activity on a resource.
type Span struct {
	Resource string
	Name     string
	Start    float64
	End      float64
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Mark is an instantaneous named event.
type Mark struct {
	Name string
	At   float64
}

// Timeline accumulates spans and marks. The zero value is ready to use.
type Timeline struct {
	Spans []Span
	Marks []Mark
}

// AddSpan records a span. End < Start panics: it always means a model
// bug upstream.
func (t *Timeline) AddSpan(resource, name string, start, end float64) {
	if end < start {
		panic(fmt.Sprintf("trace: span %s/%s ends (%v) before it starts (%v)", resource, name, end, start))
	}
	t.Spans = append(t.Spans, Span{Resource: resource, Name: name, Start: start, End: end})
}

// AddMark records an instantaneous event.
func (t *Timeline) AddMark(name string, at float64) {
	t.Marks = append(t.Marks, Mark{Name: name, At: at})
}

// SpansOn returns the spans recorded on one resource, ordered by start.
func (t *Timeline) SpansOn(resource string) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Resource == resource {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// MarksNamed returns marks whose name has the given prefix, ordered by
// time.
func (t *Timeline) MarksNamed(prefix string) []Mark {
	var out []Mark
	for _, m := range t.Marks {
		if strings.HasPrefix(m.Name, prefix) {
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MarkAt returns the time of the first mark with exactly this name, and
// whether it exists.
func (t *Timeline) MarkAt(name string) (float64, bool) {
	found := false
	var at float64
	for _, m := range t.Marks {
		if m.Name == name && (!found || m.At < at) {
			at = m.At
			found = true
		}
	}
	return at, found
}

// BusyOn returns the summed span durations on a resource.
func (t *Timeline) BusyOn(resource string) float64 {
	var sum float64
	for _, s := range t.Spans {
		if s.Resource == resource {
			sum += s.Duration()
		}
	}
	return sum
}

// End returns the latest span end or mark time.
func (t *Timeline) End() float64 {
	var end float64
	for _, s := range t.Spans {
		if s.End > end {
			end = s.End
		}
	}
	for _, m := range t.Marks {
		if m.At > end {
			end = m.At
		}
	}
	return end
}

// Gantt renders an ASCII gantt chart of the given resources with the
// given number of character columns. Each row is one resource; a span
// covering a column paints it with the first letter of its name.
func (t *Timeline) Gantt(resources []string, cols int) string {
	end := t.End()
	if end <= 0 || cols <= 0 {
		return ""
	}
	var b strings.Builder
	width := 0
	for _, r := range resources {
		if len(r) > width {
			width = len(r)
		}
	}
	for _, r := range resources {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.SpansOn(r) {
			c0 := int(s.Start / end * float64(cols))
			c1 := int(s.End / end * float64(cols))
			if c1 == c0 {
				c1 = c0 + 1
			}
			ch := byte('#')
			if len(s.Name) > 0 {
				ch = s.Name[0]
			}
			for c := c0; c < c1 && c < cols; c++ {
				row[c] = ch
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", width, r, string(row))
	}
	fmt.Fprintf(&b, "%-*s  0%*s%.1fms\n", width, "", cols-6, "", end*1e3)
	return b.String()
}

// CSV renders "resource,name,start,end" rows for all spans followed by
// "mark,<name>,<at>," rows for all marks.
func (t *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("resource,name,start,end\n")
	for _, s := range t.Spans {
		fmt.Fprintf(&b, "%s,%s,%.9f,%.9f\n", s.Resource, s.Name, s.Start, s.End)
	}
	for _, m := range t.Marks {
		fmt.Fprintf(&b, "mark,%s,%.9f,\n", m.Name, m.At)
	}
	return b.String()
}
