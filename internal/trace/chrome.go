package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Durations are "X" complete events;
// marks are "i" instant events.
type chromeEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`            // microseconds
	Dur   float64 `json:"dur,omitempty"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Scope string  `json:"s,omitempty"`
}

// ChromeJSON renders the timeline in the Chrome trace-event format so
// it can be opened in chrome://tracing or ui.perfetto.dev. Each
// resource becomes a thread; marks become global instant events.
func (t *Timeline) ChromeJSON() ([]byte, error) {
	// Stable thread ids by sorted resource name.
	resSet := map[string]bool{}
	for _, s := range t.Spans {
		resSet[s.Resource] = true
	}
	resources := make([]string, 0, len(resSet))
	for r := range resSet {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	tid := make(map[string]int, len(resources))
	for i, r := range resources {
		tid[r] = i + 1
	}

	events := make([]chromeEvent, 0, len(t.Spans)+len(t.Marks)+len(resources))
	for i := range resources {
		// Thread name metadata events render resource labels.
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: i + 1,
		})
	}
	for _, s := range t.Spans {
		events = append(events, chromeEvent{
			Name: s.Name, Phase: "X",
			TS: s.Start * 1e6, Dur: s.Duration() * 1e6,
			PID: 1, TID: tid[s.Resource],
		})
	}
	for _, m := range t.Marks {
		events = append(events, chromeEvent{
			Name: m.Name, Phase: "i", TS: m.At * 1e6, PID: 1, TID: 0, Scope: "g",
		})
	}
	out, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("trace: chrome json: %w", err)
	}
	return out, nil
}
