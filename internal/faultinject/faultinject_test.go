package faultinject

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection, the first one
// wrapped by the injector under label.
func tcpPair(t *testing.T, in *Injector, label string) (wrapped, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dialed.Close(); r.c.Close() })
	return in.WrapConn(dialed, label), r.c
}

// readN reads exactly n bytes from c with a deadline.
func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf
}

func TestDropBudgetIsConsumed(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Label: "a", Times: 2, Fault: Fault{DropProb: 1}})
	w, r := tcpPair(t, in, "a")
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// Only the third write survives the two-drop budget.
	got := readN(t, r, 1)
	if got[0] != 2 {
		t.Fatalf("peer saw byte %d, want 2 (first two writes dropped)", got[0])
	}
}

func TestCorruptFlipsFirstByte(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Times: 1, Fault: Fault{CorruptProb: 1}})
	w, r := tcpPair(t, in, "x")
	if _, err := w.Write([]byte{0x00, 0x42}); err != nil {
		t.Fatal(err)
	}
	got := readN(t, r, 2)
	if !bytes.Equal(got, []byte{0xFF, 0x42}) {
		t.Fatalf("peer saw % x, want ff 42", got)
	}
	// Budget consumed: the next write passes clean.
	if _, err := w.Write([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if got := readN(t, r, 1); got[0] != 0x01 {
		t.Fatalf("second write corrupted: %x", got[0])
	}
}

func TestResetClosesMidWrite(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Times: 1, Fault: Fault{ResetProb: 1}})
	w, r := tcpPair(t, in, "x")
	payload := bytes.Repeat([]byte{7}, 64)
	if _, err := w.Write(payload); err == nil {
		t.Fatal("reset write reported success")
	}
	// The peer sees exactly half the bytes, then EOF.
	got := readN(t, r, len(payload)/2)
	if len(got) != len(payload)/2 {
		t.Fatalf("peer saw %d bytes", len(got))
	}
	r.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after reset")
	}
}

func TestKillWindowGatesOnStep(t *testing.T) {
	in := New(1)
	in.Kill("srv", 2, 4)
	w, _ := tcpPair(t, in, "srv")

	// Step 1: healthy.
	if _, err := w.Write([]byte{1}); err != nil {
		t.Fatalf("write before window: %v", err)
	}
	// Steps 2 and 3: dead.
	in.SetStep(2)
	if _, err := w.Write([]byte{2}); err == nil {
		t.Fatal("write inside kill window succeeded")
	}
	// Step 4: alive again, but the old conn was closed by the kill — a
	// fresh pair works.
	in.SetStep(4)
	w2, r2 := tcpPair(t, in, "srv")
	if _, err := w2.Write([]byte{4}); err != nil {
		t.Fatalf("write after window: %v", err)
	}
	if got := readN(t, r2, 1); got[0] != 4 {
		t.Fatalf("peer saw %d", got[0])
	}
}

func TestKilledListenerRefusesAccepts(t *testing.T) {
	in := New(1)
	in.Kill("srv", 0, 0) // forever
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.WrapListener(base, "srv")
	defer ln.Close()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Skip("kernel refused the handshake outright — also a kill")
	}
	defer conn.Close()
	// The accepted conn must be closed by the wrapper: reads end fast.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("killed server answered")
	}
}

func TestDelayIsApplied(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Fault: Fault{Delay: 30 * time.Millisecond}})
	w, r := tcpPair(t, in, "x")
	go io.Copy(io.Discard, r)
	start := time.Now()
	if _, err := w.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write took %v, want >= 30ms", d)
	}
}

func TestDeterministicDecisions(t *testing.T) {
	run := func() []bool {
		in := New(99)
		in.AddRule(Rule{Fault: Fault{DropProb: 0.5}})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			d := in.decide("x", "", "", true)
			outcomes = append(outcomes, d.drop)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs", i)
		}
	}
}

// Window boundaries are [FromStep, ToStep): the rule fires on FromStep
// itself, stays live on the last interior step, and is off again on
// exactly ToStep.
func TestRuleWindowBoundarySteps(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Label: "x", FromStep: 3, ToStep: 5, Fault: Fault{Kill: true}})
	cases := []struct {
		step int
		kill bool
	}{
		{2, false}, // last step before the window
		{3, true},  // FromStep is inclusive
		{4, true},  // last interior step
		{5, false}, // ToStep is exclusive
		{6, false},
	}
	for _, c := range cases {
		in.SetStep(c.step)
		if got := in.decide("x", "", "", true).kill; got != c.kill {
			t.Errorf("step %d: kill = %v, want %v", c.step, got, c.kill)
		}
		if got := in.killActive("x"); got != c.kill {
			t.Errorf("step %d: killActive = %v, want %v", c.step, got, c.kill)
		}
	}
	// A label the rule doesn't name is never touched.
	in.SetStep(3)
	if in.decide("y", "", "", true).kill {
		t.Error("kill leaked to an unlabelled endpoint")
	}
}

// An open-ended rule (ToStep <= 0) never expires.
func TestRuleWindowOpenEnded(t *testing.T) {
	in := New(1)
	in.Kill("x", 2, 0)
	for _, step := range []int{1, 2, 100, 1 << 20} {
		in.SetStep(step)
		want := step >= 2
		if got := in.decide("x", "", "", true).kill; got != want {
			t.Errorf("step %d: kill = %v, want %v", step, got, want)
		}
	}
}

// A Times budget can run out in the middle of the step window: the rule
// then stops firing even though the window is still open, and killActive
// agrees with decide about the exhausted state.
func TestTimesBudgetExhaustsMidWindow(t *testing.T) {
	in := New(1)
	in.AddRule(Rule{Label: "x", FromStep: 2, ToStep: 10, Times: 2, Fault: Fault{Kill: true}})
	in.SetStep(5) // well inside the window
	if !in.decide("x", "", "", true).kill || !in.decide("x", "", "", true).kill {
		t.Fatal("budgeted kills did not fire inside the window")
	}
	if in.decide("x", "", "", true).kill {
		t.Fatal("kill fired past its Times budget")
	}
	if in.killActive("x") {
		t.Fatal("killActive still true after the budget ran out")
	}
	in.SetStep(7) // still inside the window: exhaustion is permanent
	if in.decide("x", "", "", true).kill {
		t.Fatal("exhausted budget revived on a later step")
	}
}
