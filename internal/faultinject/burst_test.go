package faultinject

import (
	"testing"
)

// burstSchedule evaluates RateMultiplier for label over steps [0, n).
func burstSchedule(in *Injector, label string, n int) []float64 {
	out := make([]float64, n)
	for s := 0; s < n; s++ {
		in.SetStep(s)
		out[s] = in.RateMultiplier(label)
	}
	return out
}

func TestBurstWindowEdges(t *testing.T) {
	in := New(7)
	// Flash crowd: 4x offered load over steps [3, 6).
	in.Burst("traffic", 3, 6, 4)
	want := []float64{
		1, 1, 1, // 0,1,2: before window
		4, 4, 4, // 3,4,5: burst
		1, 1, // 6,7: window closed (to is exclusive)
	}
	got := burstSchedule(in, "traffic", len(want))
	for s, w := range want {
		if got[s] != w {
			t.Fatalf("step %d: RateMultiplier = %v, want %v (full: %v)", s, got[s], w, got)
		}
	}
}

func TestBurstOpenWindowNeverCloses(t *testing.T) {
	in := New(7)
	in.Burst("traffic", 2, 0, 2.5)
	got := burstSchedule(in, "traffic", 5)
	want := []float64{1, 1, 2.5, 2.5, 2.5}
	for s, w := range want {
		if got[s] != w {
			t.Fatalf("step %d: RateMultiplier = %v, want %v", s, got[s], w)
		}
	}
}

func TestBurstMatchesOnlyItsLabel(t *testing.T) {
	in := New(7)
	in.Burst("front", 0, 0, 3)
	in.SetStep(0)
	if m := in.RateMultiplier("front"); m != 3 {
		t.Fatalf("front multiplier = %v, want 3", m)
	}
	if m := in.RateMultiplier("other"); m != 1 {
		t.Fatalf("burst rule for front leaked onto other: %v", m)
	}
}

func TestBurstRulesCompose(t *testing.T) {
	in := New(7)
	// Overlapping bursts multiply: a diurnal peak with a flash crowd on
	// top of it.
	in.Burst("traffic", 0, 10, 2)
	in.Burst("traffic", 5, 8, 3)
	in.SetStep(4)
	if m := in.RateMultiplier("traffic"); m != 2 {
		t.Fatalf("step 4 multiplier = %v, want 2", m)
	}
	in.SetStep(5)
	if m := in.RateMultiplier("traffic"); m != 6 {
		t.Fatalf("step 5 multiplier = %v, want 6", m)
	}
	in.SetStep(8)
	if m := in.RateMultiplier("traffic"); m != 2 {
		t.Fatalf("step 8 multiplier = %v, want 2", m)
	}
}

func TestBurstIsDeterministic(t *testing.T) {
	a, b := New(1), New(2)
	a.Burst("t", 1, 4, 5)
	b.Burst("t", 1, 4, 5)
	// Different seeds, identical schedules: the multiplier takes no rng
	// draw, so seeded replays see the same offered-load curve.
	ga, gb := burstSchedule(a, "t", 6), burstSchedule(b, "t", 6)
	for s := range ga {
		if ga[s] != gb[s] {
			t.Fatalf("step %d: schedules diverged across seeds: %v vs %v", s, ga, gb)
		}
	}
}

func TestBurstDoesNotTouchTheWire(t *testing.T) {
	in := New(7)
	in.Burst("a", 0, 0, 10)
	in.SetStep(0)
	// A burst shapes load at the source; the wrapped conn itself stays
	// healthy and the rule never registers as a wire fault.
	w, r := tcpPair(t, in, "a")
	if _, err := w.Write([]byte{9}); err != nil {
		t.Fatalf("write under burst: %v", err)
	}
	if b := readN(t, r, 1); b[0] != 9 {
		t.Fatalf("peer read %v, want [9]", b)
	}
	if in.killActive("a") {
		t.Fatal("burst rule must not kill the endpoint")
	}
}
