// Package faultinject provides deterministic, policy-driven network
// fault injection for the live transport stack. An Injector wraps
// net.Conn and net.Listener values with a label (e.g. "m1" for machine
// 1's server); rules match labels and an iteration-step window and
// inject delays, silent drops, corruption, mid-frame resets, or a full
// kill of the endpoint. All randomness comes from one seeded generator,
// so a failure scenario ("kill machine 2's server between step 3 and
// 5, drop the first ack of machine 0") replays identically run after
// run — which is what lets the fault-tolerance tests assert exact
// degradation behaviour instead of flakily observing it.
package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what an active rule does to matched operations.
type Fault struct {
	// Delay is added before every matched Read and Write.
	Delay time.Duration
	// DropProb silently discards a Write: the caller sees success but
	// no bytes reach the peer (the response then times out upstream).
	DropProb float64
	// CorruptProb XORs the first byte of a Write with 0xFF. On a frame
	// boundary this lands in the length prefix, which the transport's
	// bounded reader rejects — exercising the corrupt-frame path.
	CorruptProb float64
	// ResetProb writes half the buffer and then closes the connection:
	// the peer observes a mid-frame connection reset.
	ResetProb float64
	// Kill refuses all traffic for the labelled endpoint while active:
	// reads and writes fail immediately and freshly accepted
	// connections are closed before serving, as if the process died.
	Kill bool
	// Block models a network partition in one direction: matched Writes
	// are silently discarded and matched Reads stall until the rule
	// deactivates (TCP retransmits deliver buffered data after heal) or
	// the connection closes. Blocks never consume the Times budget —
	// a partition is a link state, not a countable fault.
	Block bool
	// SlowProb turns Delay into a probabilistic gray failure: with
	// probability SlowProb the operation is delayed by Delay plus a
	// uniform draw in [0, DelayJitter). With SlowProb == 0 a plain
	// Delay applies unconditionally, as before.
	SlowProb    float64
	DelayJitter time.Duration
	// FlapDown/FlapUp model churn: starting at the rule's FromStep the
	// endpoint cycles dead for FlapDown steps, then alive for FlapUp
	// steps, repeating until the window closes. During a down phase the
	// endpoint behaves exactly like a Kill target (reads/writes fail,
	// accepted connections are closed). FlapDown <= 0 disables flapping;
	// FlapDown > 0 with FlapUp <= 0 degenerates to a permanent kill.
	FlapDown int
	FlapUp   int
	// RateMult is an open-loop arrival-rate multiplier for traffic
	// generators that consult RateMultiplier: while the rule's window
	// is active, the labelled source multiplies its offered load by
	// this factor (a flash crowd). RateMult never touches the wire —
	// it shapes load at the source — so, like Block, it is a state,
	// not a countable fault, and never consumes the Times budget.
	RateMult float64
}

// Rule activates a Fault for one labelled endpoint over a step window.
type Rule struct {
	// Label selects which wrapped endpoint the rule applies to; ""
	// matches every endpoint.
	Label string
	// From/To make the rule directional: it matches only operations
	// travelling From → To between endpoints wrapped with WrapConnPair
	// (a Write on a pair conn travels src → dst, a Read dst → src).
	// Both must be set; directional rules ignore Label.
	From, To string
	// FromStep is the first step (inclusive) the rule is active.
	// Steps are advanced by the harness via SetStep; step 0 (the
	// default before any SetStep call) matches FromStep 0.
	FromStep int
	// ToStep is the first step the rule is inactive again; <=0 means
	// the rule never expires.
	ToStep int
	// Times bounds how many faults the rule may inject (drops,
	// corruptions, resets, kill refusals); <=0 means unlimited.
	// Delays do not consume the budget.
	Times int
	Fault Fault
}

// Injector owns the rule set, the deterministic RNG, and the current
// step. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	step  int
}

type ruleState struct {
	Rule
	remaining int // Times budget left; -1 = unlimited
}

// New returns an injector whose probabilistic decisions derive from
// seed alone.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// AddRule installs a rule. Rules are evaluated in insertion order and
// all matching active rules apply (delays accumulate; the first rule
// that triggers a drop/corrupt/reset/kill decides the fate of the op).
func (in *Injector) AddRule(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	rs := &ruleState{Rule: r, remaining: -1}
	if r.Times > 0 {
		rs.remaining = r.Times
	}
	in.rules = append(in.rules, rs)
}

// Kill is sugar for the headline scenario: the endpoint labelled label
// is dead from step from (inclusive) until step to (exclusive; <=0 =
// forever).
func (in *Injector) Kill(label string, from, to int) {
	in.AddRule(Rule{Label: label, FromStep: from, ToStep: to, Fault: Fault{Kill: true}})
}

// Partition cuts the link between endpoints a and b in both directions
// from step from (inclusive) until step to (exclusive; <=0 = forever).
// Writes across the cut are silently lost and reads stall until heal.
func (in *Injector) Partition(a, b string, from, to int) {
	in.AddRule(Rule{From: a, To: b, FromStep: from, ToStep: to, Fault: Fault{Block: true}})
	in.AddRule(Rule{From: b, To: a, FromStep: from, ToStep: to, Fault: Fault{Block: true}})
}

// PartitionOneWay cuts only the from → to direction: traffic the other
// way still flows, which is the asymmetric (zombie-writer) scenario.
func (in *Injector) PartitionOneWay(from, to string, fromStep, toStep int) {
	in.AddRule(Rule{From: from, To: to, FromStep: fromStep, ToStep: toStep, Fault: Fault{Block: true}})
}

// Flap is sugar for churn: the endpoint labelled label repeatedly dies
// and rejoins on a fixed step schedule — dead for down steps, then
// alive for up steps — from step from (inclusive) until step to
// (exclusive; <=0 = forever). Each down phase kills the endpoint
// exactly like Kill; each up phase restores it, exercising the
// fence/readmit/reconcile path on every cycle.
func (in *Injector) Flap(label string, from, to, down, up int) {
	in.AddRule(Rule{Label: label, FromStep: from, ToStep: to, Fault: Fault{FlapDown: down, FlapUp: up}})
}

// Slow marks the labelled endpoint as a gray failure: with probability
// prob every operation is delayed by delay plus seeded jitter in
// [0, jitter). The rule is windowless and outcome-neutral.
func (in *Injector) Slow(label string, delay, jitter time.Duration, prob float64) {
	in.AddRule(Rule{Label: label, Fault: Fault{Delay: delay, DelayJitter: jitter, SlowProb: prob}})
}

// Burst marks a flash crowd: while [from, to) is active the traffic
// source labelled label multiplies its open-loop arrival rate by mult.
// Window semantics match every other rule (from inclusive, to
// exclusive, to <= 0 = never closes).
func (in *Injector) Burst(label string, from, to int, mult float64) {
	in.AddRule(Rule{Label: label, FromStep: from, ToStep: to, Fault: Fault{RateMult: mult}})
}

// RateMultiplier returns the combined arrival-rate multiplier the
// labelled traffic source should apply at the injector's current step:
// the product of every active Burst rule's RateMult, 1 when none is
// active. Deterministic — no rng draw — so a seeded run replays the
// same offered-load curve.
func (in *Injector) RateMultiplier(label string) float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	m := 1.0
	for _, rs := range in.rules {
		if rs.Fault.RateMult > 0 && rs.active(label, in.step) {
			m *= rs.Fault.RateMult
		}
	}
	return m
}

// SetStep advances the harness's iteration counter; rules gate on it.
func (in *Injector) SetStep(step int) {
	in.mu.Lock()
	in.step = step
	in.mu.Unlock()
}

// Step returns the current iteration counter.
func (in *Injector) Step() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

func (rs *ruleState) active(label string, step int) bool {
	if rs.From != "" || rs.To != "" {
		return false // directional rules never match by label
	}
	if rs.Label != "" && rs.Label != label {
		return false
	}
	return rs.inWindow(step)
}

// activeDir reports whether a directional rule covers an operation
// travelling src → dst at the given step.
func (rs *ruleState) activeDir(src, dst string, step int) bool {
	if rs.From == "" && rs.To == "" {
		return false
	}
	if src == "" || dst == "" || rs.From != src || rs.To != dst {
		return false
	}
	return rs.inWindow(step)
}

func (rs *ruleState) inWindow(step int) bool {
	if step < rs.FromStep {
		return false
	}
	if rs.ToStep > 0 && step >= rs.ToStep {
		return false
	}
	return true
}

// killNow reports whether the rule demands kill behaviour at step: a
// plain Kill rule always does while in window; a Flap rule only during
// its down phase. Callers must have checked the window already.
func (rs *ruleState) killNow(step int) bool {
	if rs.Fault.Kill {
		return true
	}
	f := rs.Fault
	if f.FlapDown <= 0 {
		return false
	}
	period := f.FlapDown + f.FlapUp
	if period <= f.FlapDown { // FlapUp <= 0: permanently down
		return true
	}
	return (step-rs.FromStep)%period < f.FlapDown
}

// decision is the merged outcome of all active rules for one operation.
type decision struct {
	delay   time.Duration
	kill    bool
	drop    bool
	corrupt bool
	reset   bool
	block   bool
}

// decide rolls the dice for one Read (write=false) or Write
// (write=true) on the labelled endpoint. opSrc/opDst name the
// direction the operation's bytes travel (empty for non-pair conns).
func (in *Injector) decide(label, opSrc, opDst string, write bool) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d decision
	for _, rs := range in.rules {
		if !rs.active(label, in.step) && !rs.activeDir(opSrc, opDst, in.step) {
			continue
		}
		if rs.Fault.SlowProb > 0 {
			if in.rng.Float64() < rs.Fault.SlowProb {
				d.delay += rs.Fault.Delay
				if rs.Fault.DelayJitter > 0 {
					d.delay += time.Duration(in.rng.Int63n(int64(rs.Fault.DelayJitter)))
				}
			}
		} else {
			d.delay += rs.Fault.Delay
		}
		if d.kill || d.drop || d.corrupt || d.reset || d.block {
			continue // fate already decided by an earlier rule
		}
		if rs.Fault.Kill || rs.Fault.FlapDown > 0 {
			if rs.killNow(in.step) && rs.consume() {
				d.kill = true
			}
			continue
		}
		if rs.Fault.Block {
			d.block = true // link state: no Times budget consumed
			continue
		}
		if !write {
			continue // drop/corrupt/reset are write-side faults
		}
		switch {
		case rs.Fault.DropProb > 0 && in.rng.Float64() < rs.Fault.DropProb:
			if rs.consume() {
				d.drop = true
			}
		case rs.Fault.CorruptProb > 0 && in.rng.Float64() < rs.Fault.CorruptProb:
			if rs.consume() {
				d.corrupt = true
			}
		case rs.Fault.ResetProb > 0 && in.rng.Float64() < rs.Fault.ResetProb:
			if rs.consume() {
				d.reset = true
			}
		}
	}
	return d
}

// blockActive reports whether a Block rule still covers the opSrc →
// opDst direction, without rolling any dice (used by the read-side
// stall loop to notice heal).
func (in *Injector) blockActive(label, opSrc, opDst string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if !rs.Fault.Block {
			continue
		}
		if rs.active(label, in.step) || rs.activeDir(opSrc, opDst, in.step) {
			return true
		}
	}
	return false
}

func (rs *ruleState) consume() bool {
	if rs.remaining == 0 {
		return false
	}
	if rs.remaining > 0 {
		rs.remaining--
	}
	return true
}

// OutcomeNeutral reports whether the installed rule set can only slow
// traffic down, never change what arrives: every rule is a pure delay
// (no drop/corrupt/reset/kill), has no step window, and no Times
// budget. The live-cluster trainer uses this to decide whether
// free-running cross-step overlap is safe — outcome rules and
// step-gated rules both require the step-synced schedule, because their
// effects depend on the step clock or on RNG draw order.
func (in *Injector) OutcomeNeutral() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		f := rs.Fault
		if f.Kill || f.FlapDown > 0 || f.DropProb > 0 || f.CorruptProb > 0 || f.ResetProb > 0 || f.Block {
			return false
		}
		if rs.FromStep > 0 || rs.ToStep > 0 || rs.Times > 0 {
			return false
		}
	}
	return true
}

// killActive reports whether a kill rule currently covers label,
// without consuming any budget (used by the listener wrapper).
func (in *Injector) killActive(label string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.active(label, in.step) && rs.killNow(in.step) && rs.remaining != 0 {
			return true
		}
	}
	return false
}

// WrapConn returns conn with this injector's faults applied under the
// given endpoint label.
func (in *Injector) WrapConn(conn net.Conn, label string) net.Conn {
	return &faultConn{Conn: conn, in: in, label: label}
}

// WrapConnPair wraps conn with a direction-aware label pair on top of
// the usual endpoint label: Writes travel src → dst, Reads dst → src,
// which is what directional (From/To) rules match against.
func (in *Injector) WrapConnPair(conn net.Conn, label, src, dst string) net.Conn {
	return &faultConn{Conn: conn, in: in, label: label, src: src, dst: dst}
}

// WrapListener returns ln with accepted connections wrapped under
// label. While a kill rule covers the label, accepted connections are
// closed immediately (the TCP handshake may still succeed — exactly
// like a process that died after the kernel accepted the connection).
func (in *Injector) WrapListener(ln net.Listener, label string) net.Listener {
	return &faultListener{Listener: ln, in: in, label: label}
}

type faultListener struct {
	net.Listener
	in    *Injector
	label string
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.killActive(l.label) {
			conn.Close()
			continue
		}
		return l.in.WrapConn(conn, l.label), nil
	}
}

type faultConn struct {
	net.Conn
	in       *Injector
	label    string
	src, dst string // pair direction labels; empty for plain WrapConn
	closed   atomic.Bool
}

func (c *faultConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

// blockPollInterval paces the read-side stall loop while a Block rule
// covers the inbound direction.
const blockPollInterval = time.Millisecond

func (c *faultConn) Read(b []byte) (int, error) {
	d := c.in.decide(c.label, c.dst, c.src, false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.kill {
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("endpoint killed"))
	}
	if d.block {
		// Inbound direction is partitioned: stall until the rule
		// deactivates (heal) or the connection is torn down, then let
		// the buffered bytes through — TCP retransmit semantics.
		for c.in.blockActive(c.label, c.dst, c.src) {
			if c.closed.Load() {
				return 0, errors.Join(ErrInjected, errors.New("partitioned connection closed"))
			}
			time.Sleep(blockPollInterval)
		}
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	d := c.in.decide(c.label, c.src, c.dst, true)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	switch {
	case d.kill:
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("endpoint killed"))
	case d.drop, d.block:
		return len(b), nil // silently lost
	case d.corrupt:
		buf := make([]byte, len(b))
		copy(buf, b)
		if len(buf) > 0 {
			buf[0] ^= 0xFF
		}
		return c.Conn.Write(buf)
	case d.reset:
		if half := len(b) / 2; half > 0 {
			c.Conn.Write(b[:half])
		}
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("connection reset mid-frame"))
	}
	return c.Conn.Write(b)
}
