// Package faultinject provides deterministic, policy-driven network
// fault injection for the live transport stack. An Injector wraps
// net.Conn and net.Listener values with a label (e.g. "m1" for machine
// 1's server); rules match labels and an iteration-step window and
// inject delays, silent drops, corruption, mid-frame resets, or a full
// kill of the endpoint. All randomness comes from one seeded generator,
// so a failure scenario ("kill machine 2's server between step 3 and
// 5, drop the first ack of machine 0") replays identically run after
// run — which is what lets the fault-tolerance tests assert exact
// degradation behaviour instead of flakily observing it.
package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault describes what an active rule does to matched operations.
type Fault struct {
	// Delay is added before every matched Read and Write.
	Delay time.Duration
	// DropProb silently discards a Write: the caller sees success but
	// no bytes reach the peer (the response then times out upstream).
	DropProb float64
	// CorruptProb XORs the first byte of a Write with 0xFF. On a frame
	// boundary this lands in the length prefix, which the transport's
	// bounded reader rejects — exercising the corrupt-frame path.
	CorruptProb float64
	// ResetProb writes half the buffer and then closes the connection:
	// the peer observes a mid-frame connection reset.
	ResetProb float64
	// Kill refuses all traffic for the labelled endpoint while active:
	// reads and writes fail immediately and freshly accepted
	// connections are closed before serving, as if the process died.
	Kill bool
}

// Rule activates a Fault for one labelled endpoint over a step window.
type Rule struct {
	// Label selects which wrapped endpoint the rule applies to; ""
	// matches every endpoint.
	Label string
	// FromStep is the first step (inclusive) the rule is active.
	// Steps are advanced by the harness via SetStep; step 0 (the
	// default before any SetStep call) matches FromStep 0.
	FromStep int
	// ToStep is the first step the rule is inactive again; <=0 means
	// the rule never expires.
	ToStep int
	// Times bounds how many faults the rule may inject (drops,
	// corruptions, resets, kill refusals); <=0 means unlimited.
	// Delays do not consume the budget.
	Times int
	Fault Fault
}

// Injector owns the rule set, the deterministic RNG, and the current
// step. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	step  int
}

type ruleState struct {
	Rule
	remaining int // Times budget left; -1 = unlimited
}

// New returns an injector whose probabilistic decisions derive from
// seed alone.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// AddRule installs a rule. Rules are evaluated in insertion order and
// all matching active rules apply (delays accumulate; the first rule
// that triggers a drop/corrupt/reset/kill decides the fate of the op).
func (in *Injector) AddRule(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	rs := &ruleState{Rule: r, remaining: -1}
	if r.Times > 0 {
		rs.remaining = r.Times
	}
	in.rules = append(in.rules, rs)
}

// Kill is sugar for the headline scenario: the endpoint labelled label
// is dead from step from (inclusive) until step to (exclusive; <=0 =
// forever).
func (in *Injector) Kill(label string, from, to int) {
	in.AddRule(Rule{Label: label, FromStep: from, ToStep: to, Fault: Fault{Kill: true}})
}

// SetStep advances the harness's iteration counter; rules gate on it.
func (in *Injector) SetStep(step int) {
	in.mu.Lock()
	in.step = step
	in.mu.Unlock()
}

// Step returns the current iteration counter.
func (in *Injector) Step() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

func (rs *ruleState) active(label string, step int) bool {
	if rs.Label != "" && rs.Label != label {
		return false
	}
	if step < rs.FromStep {
		return false
	}
	if rs.ToStep > 0 && step >= rs.ToStep {
		return false
	}
	return true
}

// decision is the merged outcome of all active rules for one operation.
type decision struct {
	delay   time.Duration
	kill    bool
	drop    bool
	corrupt bool
	reset   bool
}

// decide rolls the dice for one Read (write=false) or Write
// (write=true) on the labelled endpoint.
func (in *Injector) decide(label string, write bool) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d decision
	for _, rs := range in.rules {
		if !rs.active(label, in.step) {
			continue
		}
		d.delay += rs.Fault.Delay
		if d.kill || d.drop || d.corrupt || d.reset {
			continue // fate already decided by an earlier rule
		}
		if rs.Fault.Kill {
			if rs.consume() {
				d.kill = true
			}
			continue
		}
		if !write {
			continue // drop/corrupt/reset are write-side faults
		}
		switch {
		case rs.Fault.DropProb > 0 && in.rng.Float64() < rs.Fault.DropProb:
			if rs.consume() {
				d.drop = true
			}
		case rs.Fault.CorruptProb > 0 && in.rng.Float64() < rs.Fault.CorruptProb:
			if rs.consume() {
				d.corrupt = true
			}
		case rs.Fault.ResetProb > 0 && in.rng.Float64() < rs.Fault.ResetProb:
			if rs.consume() {
				d.reset = true
			}
		}
	}
	return d
}

func (rs *ruleState) consume() bool {
	if rs.remaining == 0 {
		return false
	}
	if rs.remaining > 0 {
		rs.remaining--
	}
	return true
}

// OutcomeNeutral reports whether the installed rule set can only slow
// traffic down, never change what arrives: every rule is a pure delay
// (no drop/corrupt/reset/kill), has no step window, and no Times
// budget. The live-cluster trainer uses this to decide whether
// free-running cross-step overlap is safe — outcome rules and
// step-gated rules both require the step-synced schedule, because their
// effects depend on the step clock or on RNG draw order.
func (in *Injector) OutcomeNeutral() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		f := rs.Fault
		if f.Kill || f.DropProb > 0 || f.CorruptProb > 0 || f.ResetProb > 0 {
			return false
		}
		if rs.FromStep > 0 || rs.ToStep > 0 || rs.Times > 0 {
			return false
		}
	}
	return true
}

// killActive reports whether a kill rule currently covers label,
// without consuming any budget (used by the listener wrapper).
func (in *Injector) killActive(label string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		if rs.active(label, in.step) && rs.Fault.Kill && rs.remaining != 0 {
			return true
		}
	}
	return false
}

// WrapConn returns conn with this injector's faults applied under the
// given endpoint label.
func (in *Injector) WrapConn(conn net.Conn, label string) net.Conn {
	return &faultConn{Conn: conn, in: in, label: label}
}

// WrapListener returns ln with accepted connections wrapped under
// label. While a kill rule covers the label, accepted connections are
// closed immediately (the TCP handshake may still succeed — exactly
// like a process that died after the kernel accepted the connection).
func (in *Injector) WrapListener(ln net.Listener, label string) net.Listener {
	return &faultListener{Listener: ln, in: in, label: label}
}

type faultListener struct {
	net.Listener
	in    *Injector
	label string
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.killActive(l.label) {
			conn.Close()
			continue
		}
		return l.in.WrapConn(conn, l.label), nil
	}
}

type faultConn struct {
	net.Conn
	in    *Injector
	label string
}

func (c *faultConn) Read(b []byte) (int, error) {
	d := c.in.decide(c.label, false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.kill {
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("endpoint killed"))
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	d := c.in.decide(c.label, true)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	switch {
	case d.kill:
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("endpoint killed"))
	case d.drop:
		return len(b), nil // silently lost
	case d.corrupt:
		buf := make([]byte, len(b))
		copy(buf, b)
		if len(buf) > 0 {
			buf[0] ^= 0xFF
		}
		return c.Conn.Write(buf)
	case d.reset:
		if half := len(b) / 2; half > 0 {
			c.Conn.Write(b[:half])
		}
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("connection reset mid-frame"))
	}
	return c.Conn.Write(b)
}
