package faultinject

import (
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory conn with the a-side
// wrapped as a directional pair conn (writes travel a → b).
func pipePair(in *Injector) (wrapped, peer net.Conn) {
	ca, cb := net.Pipe()
	return in.WrapConnPair(ca, "a.client", "a", "b"), cb
}

// readWithin reads one byte from c, failing if it does not arrive
// inside the budget.
func readWithin(t *testing.T, c net.Conn, budget time.Duration) byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(budget))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read did not complete within %v: %v", budget, err)
	}
	return buf[0]
}

// expectNoData asserts nothing arrives on c inside the budget.
func expectNoData(t *testing.T, c net.Conn, budget time.Duration) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(budget))
	buf := make([]byte, 1)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read %d bytes across an active partition", n)
	}
}

// A symmetric partition drops writes in the covered window and lets
// them through again outside it — including the boundary steps: active
// at FromStep, inactive again at ToStep.
func TestPartitionBoundarySteps(t *testing.T) {
	in := New(1)
	in.Partition("a", "b", 2, 4)
	wrapped, peer := pipePair(in)
	defer wrapped.Close()
	defer peer.Close()

	send := func() {
		go wrapped.Write([]byte{0x42}) // net.Pipe writes rendezvous with reads
	}
	in.SetStep(1)
	send()
	readWithin(t, peer, time.Second)

	for _, step := range []int{2, 3} {
		in.SetStep(step)
		send()
		expectNoData(t, peer, 30*time.Millisecond)
	}

	in.SetStep(4)
	send()
	readWithin(t, peer, time.Second)
}

// A one-way partition is asymmetric: the blocked direction loses
// writes while the reverse direction keeps flowing. The wrapped end's
// reads carry b → a traffic, which the a → b rule must not touch.
func TestPartitionOneWayIsAsymmetric(t *testing.T) {
	in := New(2)
	in.PartitionOneWay("a", "b", 0, 0)
	wrapped, peer := pipePair(in)
	defer wrapped.Close()
	defer peer.Close()

	go wrapped.Write([]byte{0x01})
	expectNoData(t, peer, 30*time.Millisecond)

	go peer.Write([]byte{0x02})
	if got := readWithin(t, wrapped, time.Second); got != 0x02 {
		t.Fatalf("reverse direction delivered %#x, want 0x02", got)
	}
}

// The read side of a partition stalls buffered traffic until the rule
// heals, then delivers it — TCP retransmit semantics — instead of
// surfacing an error the transport would misread as a dead peer.
func TestPartitionReadStallsUntilHeal(t *testing.T) {
	in := New(3)
	in.AddRule(Rule{From: "b", To: "a", FromStep: 1, ToStep: 3, Fault: Fault{Block: true}})
	wrapped, peer := pipePair(in)
	defer wrapped.Close()
	defer peer.Close()

	in.SetStep(1)
	go peer.Write([]byte{0x07})
	got := make(chan byte, 1)
	go func() {
		buf := make([]byte, 1)
		if _, err := wrapped.Read(buf); err == nil {
			got <- buf[0]
		}
	}()
	select {
	case <-got:
		t.Fatal("read completed across an active inbound partition")
	case <-time.After(30 * time.Millisecond):
	}
	in.SetStep(3) // heal
	select {
	case b := <-got:
		if b != 0x07 {
			t.Fatalf("post-heal read delivered %#x, want 0x07", b)
		}
	case <-time.After(time.Second):
		t.Fatal("buffered byte not delivered after heal")
	}
}

// Closing a partitioned conn unblocks its stalled reader with an error
// instead of leaking the goroutine until the window expires.
func TestPartitionedCloseUnblocksReader(t *testing.T) {
	in := New(4)
	in.PartitionOneWay("b", "a", 0, 0)
	wrapped, peer := pipePair(in)
	defer peer.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := wrapped.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wrapped.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled read returned no error after close")
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read not unblocked by close")
	}
}

// SlowProb with probability 1 delays every operation by at least the
// base delay (plus jitter), and the rule stays outcome-neutral — the
// overlap scheduler may keep free-running under a gray failure.
func TestSlowDelaysAndStaysOutcomeNeutral(t *testing.T) {
	in := New(5)
	in.Slow("s", 20*time.Millisecond, 5*time.Millisecond, 1)
	if !in.OutcomeNeutral() {
		t.Fatal("windowless Slow rule reported outcome-changing")
	}
	ca, cb := net.Pipe()
	wrapped := in.WrapConn(ca, "s")
	defer wrapped.Close()
	defer cb.Close()
	go func() {
		cb.Read(make([]byte, 1))
	}()
	start := time.Now()
	if _, err := wrapped.Write([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slow write took %v, want >= 20ms", d)
	}

	// A partition, by contrast, changes outcomes.
	in.Partition("a", "b", 0, 0)
	if in.OutcomeNeutral() {
		t.Fatal("partition rule reported outcome-neutral")
	}
}
