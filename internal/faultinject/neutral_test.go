package faultinject

import (
	"testing"
	"time"
)

func TestOutcomeNeutral(t *testing.T) {
	neutral := New(1)
	neutral.AddRule(Rule{Label: "m0", Fault: Fault{Delay: time.Millisecond}})
	neutral.AddRule(Rule{Fault: Fault{Delay: 2 * time.Millisecond}})
	if !neutral.OutcomeNeutral() {
		t.Fatal("window-free pure delays should be outcome-neutral")
	}

	cases := map[string]Rule{
		"kill":        {Fault: Fault{Kill: true}},
		"drop":        {Fault: Fault{DropProb: 0.1}},
		"corrupt":     {Fault: Fault{CorruptProb: 0.1}},
		"reset":       {Fault: Fault{ResetProb: 0.1}},
		"step-window": {FromStep: 2, ToStep: 4, Fault: Fault{Delay: time.Millisecond}},
		"times":       {Times: 3, Fault: Fault{Delay: time.Millisecond}},
	}
	for name, r := range cases {
		in := New(1)
		in.AddRule(Rule{Fault: Fault{Delay: time.Millisecond}})
		in.AddRule(r)
		if in.OutcomeNeutral() {
			t.Errorf("%s rule wrongly classified outcome-neutral", name)
		}
	}
	if !New(2).OutcomeNeutral() {
		t.Fatal("empty rule set should be outcome-neutral")
	}
}
