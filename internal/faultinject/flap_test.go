package faultinject

import (
	"testing"
)

// flapSchedule evaluates killActive for label over steps [0, n).
func flapSchedule(in *Injector, label string, n int) []bool {
	out := make([]bool, n)
	for s := 0; s < n; s++ {
		in.SetStep(s)
		out[s] = in.killActive(label)
	}
	return out
}

func TestFlapSchedule(t *testing.T) {
	in := New(7)
	// From step 2, down 2 steps, up 3 steps, window closes at step 12.
	in.Flap("m1", 2, 12, 2, 3)
	want := []bool{
		false, false, // 0,1: before window
		true, true, // 2,3: down
		false, false, false, // 4,5,6: up
		true, true, // 7,8: down
		false, false, false, // 9,10,11: up
		false, false, // 12,13: window closed
	}
	got := flapSchedule(in, "m1", len(want))
	for s, w := range want {
		if got[s] != w {
			t.Fatalf("step %d: killActive = %v, want %v (full: %v)", s, got[s], w, got)
		}
	}
}

func TestFlapNoUpPhaseIsPermanentKill(t *testing.T) {
	in := New(7)
	in.Flap("m2", 1, 0, 3, 0)
	got := flapSchedule(in, "m2", 6)
	want := []bool{false, true, true, true, true, true}
	for s, w := range want {
		if got[s] != w {
			t.Fatalf("step %d: killActive = %v, want %v", s, got[s], w)
		}
	}
}

func TestFlapMatchesOnlyItsLabel(t *testing.T) {
	in := New(7)
	in.Flap("m1", 0, 0, 1, 1)
	in.SetStep(0)
	if !in.killActive("m1") {
		t.Fatal("m1 should be down at step 0")
	}
	if in.killActive("m2") {
		t.Fatal("flap rule for m1 must not kill m2")
	}
}

func TestFlapKillsConnDuringDownPhaseOnly(t *testing.T) {
	in := New(7)
	in.Flap("a", 0, 0, 1, 1) // down on even steps, up on odd
	w, r := tcpPair(t, in, "a")

	in.SetStep(0)
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("write during down phase should fail")
	}

	// The down-phase kill closes the wrapped conn; build a fresh pair
	// for the up phase, as a flapped process would after restart.
	in.SetStep(1)
	w2, r2 := tcpPair(t, in, "a")
	_ = r
	if _, err := w2.Write([]byte{2}); err != nil {
		t.Fatalf("write during up phase: %v", err)
	}
	if b := readN(t, r2, 1); b[0] != 2 {
		t.Fatalf("peer read %v, want [2]", b)
	}
}

func TestFlapBreaksOutcomeNeutrality(t *testing.T) {
	in := New(7)
	if !in.OutcomeNeutral() {
		t.Fatal("empty rule set should be outcome-neutral")
	}
	in.Flap("m1", 0, 0, 1, 4)
	if in.OutcomeNeutral() {
		t.Fatal("a flap rule must force the step-synced schedule")
	}
}

func TestFlapTimesBudget(t *testing.T) {
	in := New(7)
	in.AddRule(Rule{Label: "a", Times: 1, Fault: Fault{FlapDown: 1, FlapUp: 1}})
	w, _ := tcpPair(t, in, "a")
	in.SetStep(0)
	if _, err := w.Write([]byte{1}); err == nil {
		t.Fatal("first down-phase write should consume the budget and fail")
	}
	// Budget exhausted: even in a down phase the endpoint is live again.
	w2, r2 := tcpPair(t, in, "a")
	in.SetStep(2)
	if _, err := w2.Write([]byte{3}); err != nil {
		t.Fatalf("write after budget exhausted: %v", err)
	}
	if b := readN(t, r2, 1); b[0] != 3 {
		t.Fatalf("peer read %v, want [3]", b)
	}
}
