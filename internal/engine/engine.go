// Package engine holds the pieces shared by the expert-centric baseline
// and the Janus data-centric engine: the iteration report, completion
// barriers, and the translation of a model config into per-op compute
// durations on the simulated cluster.
package engine

import (
	"fmt"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/metrics"
	"janus/internal/topology"
	"janus/internal/trace"
)

// Report is the outcome of one simulated training iteration.
type Report struct {
	Model     string
	NumGPUs   int
	Paradigms []config.Paradigm // per block; dense blocks report ExpertCentric (no choice to make)

	IterationTime float64
	ForwardTime   float64
	BackwardTime  float64

	// CommBlockedTime is the total critical-path time the iteration
	// spent with all GPUs stalled on communication (All-to-All waits in
	// the expert-centric paradigm; fetch stalls in the data-centric
	// one). Figure 3's "latency caused by All-to-All" is this number.
	CommBlockedTime float64

	TrafficByClass       map[string]float64
	InterNodeEgressBytes float64
	PerMachineEgress     []float64

	PeakMemBytes float64
	OOM          bool

	Timeline *trace.Timeline
}

// CommShare returns CommBlockedTime / IterationTime.
func (r Report) CommShare() float64 {
	if r.IterationTime == 0 {
		return 0
	}
	return r.CommBlockedTime / r.IterationTime
}

// String summarises the report in one line.
func (r Report) String() string {
	if r.OOM {
		return fmt.Sprintf("%s on %d GPUs: OOM (peak %.1f GB)", r.Model, r.NumGPUs, r.PeakMemBytes/1e9)
	}
	return fmt.Sprintf("%s on %d GPUs: iter %.1fms (fwd %.1fms, comm-blocked %.1fms = %.0f%%), inter-node %.2f GiB",
		r.Model, r.NumGPUs, r.IterationTime*1e3, r.ForwardTime*1e3,
		r.CommBlockedTime*1e3, r.CommShare()*100, metrics.GiB(r.InterNodeEgressBytes))
}

// FinishTraffic populates the traffic fields from the cluster's links.
func (r *Report) FinishTraffic(c *topology.Cluster) {
	c.Net.Sync()
	r.TrafficByClass = metrics.TrafficByClass(c.Net.Links())
	r.InterNodeEgressBytes = c.InterNodeEgressBytes()
	r.PerMachineEgress = make([]float64, len(c.Machines))
	for i := range c.Machines {
		r.PerMachineEgress[i] = c.MachineEgressBytes(i)
	}
}

// Barrier calls done after Arrive has been called n times. A zero-count
// barrier fires on construction.
type Barrier struct {
	n    int
	done func()
}

// NewBarrier returns a barrier expecting n arrivals.
func NewBarrier(n int, done func()) *Barrier {
	b := &Barrier{n: n, done: done}
	if n == 0 && done != nil {
		done()
	}
	return b
}

// Arrive records one arrival; the n-th arrival invokes done.
func (b *Barrier) Arrive() {
	b.n--
	if b.n == 0 && b.done != nil {
		b.done()
	}
}

// Costs converts a model configuration into per-op compute durations on
// a given hardware spec. All durations include the per-kernel overhead.
type Costs struct {
	Spec  topology.Spec
	Model config.Model
}

// NewCosts pairs a model with a hardware spec.
func NewCosts(spec topology.Spec, model config.Model) Costs {
	return Costs{Spec: spec, Model: model}
}

func (c Costs) t(flops float64) float64 {
	return costmodel.ComputeTime(flops, c.Spec.GPUFlops, c.Spec.KernelOverhead)
}

// tRows is t with the small-batch GEMM efficiency ramp applied: a
// kernel over rows rows reaches rows/(rows+ramp) of peak.
func (c Costs) tRows(flops, rows float64) float64 {
	if flops <= 0 || rows <= 0 {
		return c.Spec.KernelOverhead
	}
	eff := 1.0
	if c.Spec.SmallBatchRampRows > 0 {
		eff = rows / (rows + c.Spec.SmallBatchRampRows)
	}
	return costmodel.ComputeTime(flops, c.Spec.GPUFlops*eff, c.Spec.KernelOverhead)
}

// AttentionFwd returns the forward duration of one attention layer on a
// worker's local batch.
func (c Costs) AttentionFwd() float64 {
	rows := float64(c.Model.B) * float64(c.Model.S)
	return c.tRows(costmodel.AttentionFwdFlops(c.Model.B, c.Model.S, c.Model.H), rows)
}

// AttentionBwd returns the backward duration of one attention layer.
func (c Costs) AttentionBwd() float64 {
	rows := float64(c.Model.B) * float64(c.Model.S)
	return c.tRows(costmodel.BackwardFactor*costmodel.AttentionFwdFlops(c.Model.B, c.Model.S, c.Model.H), rows)
}

// DenseFFNFwd returns the forward duration of a dense FFN layer.
func (c Costs) DenseFFNFwd() float64 {
	rows := float64(c.Model.B) * float64(c.Model.S)
	return c.tRows(costmodel.DenseFFNFwdFlops(c.Model.B, c.Model.S, c.Model.H), rows)
}

// DenseFFNBwd returns the backward duration of a dense FFN layer.
func (c Costs) DenseFFNBwd() float64 {
	rows := float64(c.Model.B) * float64(c.Model.S)
	return c.tRows(costmodel.BackwardFactor*costmodel.DenseFFNFwdFlops(c.Model.B, c.Model.S, c.Model.H), rows)
}

// GateFwd returns the forward duration of the gate of the given block.
func (c Costs) GateFwd(numExperts int) float64 {
	rows := float64(c.Model.B) * float64(c.Model.S)
	return c.tRows(costmodel.GateFwdFlops(c.Model.B, c.Model.S, c.Model.H, numExperts), rows)
}

// ExpertFwd returns the forward duration of one expert kernel over the
// given number of tokens. Short batches pay the small-batch ramp — the
// data-centric penalty on many-expert blocks.
func (c Costs) ExpertFwd(tokens int) float64 {
	return c.tRows(float64(tokens)*costmodel.ExpertFwdFlopsPerToken(c.Model.H), float64(tokens))
}

// ExpertBwd returns the backward duration for the given token count.
func (c Costs) ExpertBwd(tokens int) float64 {
	return c.tRows(costmodel.BackwardFactor*float64(tokens)*costmodel.ExpertFwdFlopsPerToken(c.Model.H), float64(tokens))
}

// Combine returns the duration of the weighted combine of expert
// outputs back into the token stream on one worker (memory-bound, 2
// ops per token element).
func (c Costs) Combine() float64 {
	return c.t(2 * c.Model.TokensPerWorker() * float64(c.Model.H))
}

// GradReduce returns the host-side duration of pre-reducing nGrads
// expert gradients of 8H² fp32 elements on the machine CPU.
func (c Costs) GradReduce(nGrads int) float64 {
	bytes := float64(nGrads) * costmodel.ExpertBytes(c.Model.H)
	if c.Spec.CPUReduceBps <= 0 {
		return 0
	}
	return bytes / c.Spec.CPUReduceBps
}

// OptimizerStep returns the duration of the parameter update on one
// worker (a memory-bound pass over the worker's resident parameters,
// modelled at the GPU's FLOP rate with 4 ops per parameter).
func (c Costs) OptimizerStep(numWorkers int) float64 {
	in := c.FootprintInput(numWorkers)
	params := costmodel.DenseParamsPerWorker(in) + costmodel.ExpertParamsPerWorker(in)
	return c.t(4 * params)
}

// FootprintInput builds the memory-model input for one worker of this
// model on a cluster with numWorkers GPUs. For models with per-block
// expert counts (PR-MoE) the *largest* MoE block drives buffer sizing.
func (c Costs) FootprintInput(numWorkers int) costmodel.FootprintInput {
	maxExperts := 0
	moeBlocks := 0
	for _, b := range c.Model.Blocks {
		if b.Kind == config.MoE {
			moeBlocks++
			if b.NumExperts > maxExperts {
				maxExperts = b.NumExperts
			}
		}
	}
	expertsPer := 0
	if maxExperts > 0 {
		expertsPer = maxExperts / numWorkers
	}
	return costmodel.FootprintInput{
		B: c.Model.B, S: c.Model.S, H: c.Model.H,
		NumBlocks: len(c.Model.Blocks), MoEBlocks: moeBlocks,
		ExpertsPer: expertsPer, NumExperts: maxExperts,
		TopK: c.Model.K, NumWorkers: numWorkers,
		CreditSize: 4,
	}
}

// DenseGradBytes returns the bytes of dense (replicated) gradients one
// worker contributes to the data-parallel AllReduce.
func (c Costs) DenseGradBytes(numWorkers int) float64 {
	return costmodel.DenseParamsPerWorker(c.FootprintInput(numWorkers)) * costmodel.BytesPerElem
}
