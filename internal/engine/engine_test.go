package engine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/topology"
)

func TestBarrier(t *testing.T) {
	fired := 0
	b := NewBarrier(3, func() { fired++ })
	b.Arrive()
	b.Arrive()
	if fired != 0 {
		t.Fatal("barrier fired early")
	}
	b.Arrive()
	if fired != 1 {
		t.Fatal("barrier did not fire")
	}
}

func TestZeroBarrierFiresImmediately(t *testing.T) {
	fired := false
	NewBarrier(0, func() { fired = true })
	if !fired {
		t.Fatal("zero-count barrier did not fire")
	}
}

func TestCostsMonotone(t *testing.T) {
	spec := topology.DefaultSpec(4)
	small := NewCosts(spec, config.MoEGPT(32))
	bigModel := config.MoEGPT(32)
	bigModel.B *= 2
	big := NewCosts(spec, bigModel)
	if !(big.AttentionFwd() > small.AttentionFwd()) {
		t.Error("attention cost not monotone in batch")
	}
	if !(big.DenseFFNFwd() > small.DenseFFNFwd()) {
		t.Error("FFN cost not monotone in batch")
	}
	if !(small.AttentionBwd() > small.AttentionFwd()) {
		t.Error("backward not more expensive than forward")
	}
	if !(small.ExpertBwd(1000) > small.ExpertFwd(1000)) {
		t.Error("expert backward not more expensive")
	}
	if small.ExpertFwd(0) <= 0 {
		t.Error("zero-token expert op should still cost the kernel overhead")
	}
}

func TestCostsGradReduceAndCombine(t *testing.T) {
	spec := topology.DefaultSpec(2)
	c := NewCosts(spec, config.MoEGPT(16))
	if c.GradReduce(0) != 0 {
		t.Error("zero-grad reduce should be free")
	}
	if !(c.GradReduce(8) > c.GradReduce(2)) {
		t.Error("grad reduce not monotone")
	}
	if c.Combine() <= 0 {
		t.Error("combine cost not positive")
	}
	zeroBps := spec
	zeroBps.CPUReduceBps = 0
	if NewCosts(zeroBps, config.MoEGPT(16)).GradReduce(4) != 0 {
		t.Error("zero CPU bandwidth should make reduce free")
	}
}

func TestFootprintInputPRMoE(t *testing.T) {
	c := NewCosts(topology.DefaultSpec(2), config.PRMoETransformerXL(16, 64, 32))
	in := c.FootprintInput(16)
	if in.NumExperts != 64 {
		t.Fatalf("largest MoE block should drive buffers: NumExperts=%d", in.NumExperts)
	}
	if in.MoEBlocks != 4 || in.ExpertsPer != 4 {
		t.Fatalf("footprint input wrong: %+v", in)
	}
}

func TestDenseGradBytesExcludesExperts(t *testing.T) {
	spec := topology.DefaultSpec(4)
	moe := NewCosts(spec, config.MoEBERT(32))
	in := moe.FootprintInput(32)
	wantDense := costmodel.DenseParamsPerWorker(in) * costmodel.BytesPerElem
	if got := moe.DenseGradBytes(32); math.Abs(got-wantDense) > 1 {
		t.Fatalf("DenseGradBytes = %v, want %v", got, wantDense)
	}
}

func TestReportStringAndShare(t *testing.T) {
	r := Report{Model: "m", NumGPUs: 8, IterationTime: 0.2, ForwardTime: 0.05,
		CommBlockedTime: 0.1, InterNodeEgressBytes: 2 << 30}
	if r.CommShare() != 0.5 {
		t.Fatalf("share = %v", r.CommShare())
	}
	if !strings.Contains(r.String(), "50%") {
		t.Fatalf("report string: %s", r.String())
	}
	oom := Report{Model: "m", OOM: true, PeakMemBytes: 100e9}
	if !strings.Contains(oom.String(), "OOM") {
		t.Fatalf("OOM string: %s", oom.String())
	}
	if (Report{}).CommShare() != 0 {
		t.Fatal("zero report share should be 0")
	}
}

// Property: expert kernel costs are strictly increasing in token count
// and exhibit economies of scale — the small-batch ramp makes doubling
// the batch less than double the cost (above the overhead floor).
func TestExpertCostScalingProperty(t *testing.T) {
	c := NewCosts(topology.DefaultSpec(2), config.MoEGPT(16))
	prop := func(n16 uint16) bool {
		n := int(n16) + 1
		t1 := c.ExpertFwd(n)
		t2 := c.ExpertFwd(2 * n)
		if t2 <= t1 {
			return false
		}
		return t2 < 2*t1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
