// Package gate generates token→expert assignments.
//
// Both training paradigms see the gate only through its assignment
// histogram: how many of each worker's T tokens go to each expert. The
// actual token values never matter for communication or compute volume,
// so synthetic assignments reproduce the workload exactly. Assignments
// are deterministic functions of a seed, keeping every simulation
// replayable.
package gate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Assignment holds per-worker token counts for each expert of one MoE
// block: Counts[w][e] tokens of worker w are routed to expert e. The
// total per worker is T = B·S·k (each token is replicated k times, once
// per selected expert, matching the paper's T definition).
type Assignment struct {
	NumWorkers int
	NumExperts int
	Counts     [][]int
}

// New allocates a zero assignment.
func New(numWorkers, numExperts int) Assignment {
	counts := make([][]int, numWorkers)
	for w := range counts {
		counts[w] = make([]int, numExperts)
	}
	return Assignment{NumWorkers: numWorkers, NumExperts: numExperts, Counts: counts}
}

// Validate checks the shape invariants.
func (a Assignment) Validate() error {
	if len(a.Counts) != a.NumWorkers {
		return fmt.Errorf("gate: %d count rows, want %d", len(a.Counts), a.NumWorkers)
	}
	for w, row := range a.Counts {
		if len(row) != a.NumExperts {
			return fmt.Errorf("gate: worker %d has %d expert counts, want %d", w, len(row), a.NumExperts)
		}
		for e, c := range row {
			if c < 0 {
				return fmt.Errorf("gate: negative count at [%d][%d]", w, e)
			}
		}
	}
	return nil
}

// WorkerTokens returns the total tokens worker w emits.
func (a Assignment) WorkerTokens(w int) int {
	var sum int
	for _, c := range a.Counts[w] {
		sum += c
	}
	return sum
}

// ExpertLoad returns the total tokens routed to expert e across all
// workers.
func (a Assignment) ExpertLoad(e int) int {
	var sum int
	for w := range a.Counts {
		sum += a.Counts[w][e]
	}
	return sum
}

// TotalTokens returns the global token count.
func (a Assignment) TotalTokens() int {
	var sum int
	for w := range a.Counts {
		sum += a.WorkerTokens(w)
	}
	return sum
}

// ImbalanceFactor returns max expert load over mean expert load; 1.0 is
// perfectly balanced. The All-to-All completion time under the
// expert-centric paradigm scales with this factor (§3.1).
func (a Assignment) ImbalanceFactor() float64 {
	total := a.TotalTokens()
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(a.NumExperts)
	var max int
	for e := 0; e < a.NumExperts; e++ {
		if l := a.ExpertLoad(e); l > max {
			max = l
		}
	}
	return float64(max) / mean
}

// Balanced returns the uniform assignment: each worker spreads its
// tokensPerWorker evenly over all experts (remainders round-robin from
// a worker-dependent offset so no expert is systematically favoured).
func Balanced(numWorkers, numExperts, tokensPerWorker int) Assignment {
	a := New(numWorkers, numExperts)
	base := tokensPerWorker / numExperts
	rem := tokensPerWorker % numExperts
	for w := 0; w < numWorkers; w++ {
		for e := 0; e < numExperts; e++ {
			a.Counts[w][e] = base
		}
		for i := 0; i < rem; i++ {
			a.Counts[w][(w+i)%numExperts]++
		}
	}
	return a
}

// Zipf returns a skewed assignment: expert popularity follows a Zipf
// distribution with exponent s (s=0 is uniform; the paper's imbalance
// observation [24] corresponds to s around 1), identical popularity
// ranking across workers — which is the hard case for expert-centric
// training, since hot experts hot-spot their host GPU. Token counts are
// drawn per worker from the popularity weights using a deterministic
// largest-remainder apportionment perturbed by the seeded RNG.
func Zipf(numWorkers, numExperts, tokensPerWorker int, s float64, seed int64) Assignment {
	if s < 0 {
		panic("gate: negative Zipf exponent")
	}
	a := New(numWorkers, numExperts)
	weights := make([]float64, numExperts)
	var wsum float64
	for e := range weights {
		weights[e] = 1 / math.Pow(float64(e+1), s)
		wsum += weights[e]
	}
	rng := rand.New(rand.NewSource(seed))
	for w := 0; w < numWorkers; w++ {
		// Perturb weights a little per worker so workers are not clones.
		pw := make([]float64, numExperts)
		var psum float64
		for e := range pw {
			pw[e] = weights[e] * (0.9 + 0.2*rng.Float64())
			psum += pw[e]
		}
		assigned := 0
		type frac struct {
			e int
			f float64
		}
		fracs := make([]frac, numExperts)
		for e := range pw {
			exact := float64(tokensPerWorker) * pw[e] / psum
			n := int(exact)
			a.Counts[w][e] = n
			assigned += n
			fracs[e] = frac{e, exact - float64(n)}
		}
		// Largest remainders get the leftover tokens (stable order).
		for assigned < tokensPerWorker {
			best := 0
			for i := 1; i < numExperts; i++ {
				if fracs[i].f > fracs[best].f {
					best = i
				}
			}
			a.Counts[w][fracs[best].e]++
			fracs[best].f = -1
			assigned++
		}
	}
	return a
}

// Sampler draws the expert set of one inference request. Unlike the
// training-side Assignment (a per-iteration histogram), serving needs a
// per-request pick that is a pure function of (seed, request id): the
// front-end, a replaying test, and a differential control must all
// route request r to the same experts without sharing any state. Picks
// follow the same Zipf popularity the training gates use, so flash
// crowds concentrate on the same hot experts the paper's skew predicts.
type Sampler struct {
	NumExperts int
	TopK       int
	seed       uint64
	cum        []float64 // cumulative Zipf popularity, cum[len-1] == 1
}

// NewSampler builds a serving gate over numExperts with Zipf exponent s
// (0 = uniform) picking topK distinct experts per request.
func NewSampler(numExperts, topK int, s float64, seed int64) *Sampler {
	if numExperts <= 0 || topK <= 0 || topK > numExperts {
		panic(fmt.Sprintf("gate: sampler shape %d/%d", numExperts, topK))
	}
	if s < 0 {
		panic("gate: negative Zipf exponent")
	}
	cum := make([]float64, numExperts)
	var sum float64
	for e := range cum {
		sum += 1 / math.Pow(float64(e+1), s)
		cum[e] = sum
	}
	for e := range cum {
		cum[e] /= sum
	}
	return &Sampler{NumExperts: numExperts, TopK: topK, seed: uint64(seed), cum: cum}
}

// splitmix64 advances and finalizes one step of the splitmix64 stream —
// the same finalizer the failover rendezvous hash uses, here as a
// stateless per-request RNG.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ExpertsInto writes the TopK distinct experts of request reqID into
// dst (grown as needed) in draw order: dst[0] is the request's primary
// expert, which a degraded top-1 answer uses alone. The result depends
// only on (seed, reqID).
func (sp *Sampler) ExpertsInto(reqID uint64, dst []int) []int {
	dst = dst[:0]
	state := splitmix64(sp.seed ^ 0x9E3779B97F4A7C15*reqID)
	for len(dst) < sp.TopK {
		state = splitmix64(state + 0x9E3779B97F4A7C15)
		u := float64(state>>11) / (1 << 53) // uniform in [0,1)
		e := sort.SearchFloat64s(sp.cum, u)
		if e >= sp.NumExperts {
			e = sp.NumExperts - 1
		}
		dup := false
		for _, p := range dst {
			if p == e {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, e)
		}
	}
	return dst
}

// Experts returns the TopK distinct experts of request reqID.
func (sp *Sampler) Experts(reqID uint64) []int {
	return sp.ExpertsInto(reqID, make([]int, 0, sp.TopK))
}

// Series produces per-iteration assignments whose skew drifts over
// time, modelling the dynamic gate behaviour FasterMoE and Tutel react
// to. Iteration i uses a Zipf exponent interpolated between s0 and s1.
type Series struct {
	NumWorkers, NumExperts, TokensPerWorker int
	S0, S1                                  float64
	Iterations                              int
	Seed                                    int64
}

// At returns the assignment for iteration i.
func (sr Series) At(i int) Assignment {
	if sr.Iterations <= 1 {
		return Zipf(sr.NumWorkers, sr.NumExperts, sr.TokensPerWorker, sr.S0, sr.Seed)
	}
	frac := float64(i) / float64(sr.Iterations-1)
	s := sr.S0 + (sr.S1-sr.S0)*frac
	return Zipf(sr.NumWorkers, sr.NumExperts, sr.TokensPerWorker, s, sr.Seed+int64(i))
}
