package gate

import (
	"testing"
	"testing/quick"
)

func TestBalancedExact(t *testing.T) {
	a := Balanced(4, 8, 64)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if got := a.WorkerTokens(w); got != 64 {
			t.Fatalf("worker %d tokens = %d, want 64", w, got)
		}
		for e := 0; e < 8; e++ {
			if a.Counts[w][e] != 8 {
				t.Fatalf("count[%d][%d] = %d, want 8", w, e, a.Counts[w][e])
			}
		}
	}
	if f := a.ImbalanceFactor(); f != 1 {
		t.Fatalf("imbalance = %v, want 1", f)
	}
}

func TestBalancedWithRemainder(t *testing.T) {
	a := Balanced(3, 7, 100)
	for w := 0; w < 3; w++ {
		if got := a.WorkerTokens(w); got != 100 {
			t.Fatalf("worker %d tokens = %d, want 100", w, got)
		}
	}
	// Remainders rotate by worker, so the global load spread stays tight.
	if f := a.ImbalanceFactor(); f > 1.05 {
		t.Fatalf("remainder imbalance = %v, want near 1", f)
	}
}

func TestZipfConservesTokens(t *testing.T) {
	a := Zipf(8, 32, 1000, 1.2, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		if got := a.WorkerTokens(w); got != 1000 {
			t.Fatalf("worker %d tokens = %d, want 1000", w, got)
		}
	}
}

func TestZipfSkewIncreasesImbalance(t *testing.T) {
	flat := Zipf(8, 32, 4096, 0, 1)
	skew := Zipf(8, 32, 4096, 1.0, 1)
	steep := Zipf(8, 32, 4096, 2.0, 1)
	if !(flat.ImbalanceFactor() < skew.ImbalanceFactor()) {
		t.Fatalf("imbalance flat=%v skew=%v", flat.ImbalanceFactor(), skew.ImbalanceFactor())
	}
	if !(skew.ImbalanceFactor() < steep.ImbalanceFactor()) {
		t.Fatalf("imbalance skew=%v steep=%v", skew.ImbalanceFactor(), steep.ImbalanceFactor())
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := Zipf(4, 16, 500, 1.1, 7)
	b := Zipf(4, 16, 500, 1.1, 7)
	for w := range a.Counts {
		for e := range a.Counts[w] {
			if a.Counts[w][e] != b.Counts[w][e] {
				t.Fatal("same seed produced different assignments")
			}
		}
	}
	c := Zipf(4, 16, 500, 1.1, 8)
	same := true
	for w := range a.Counts {
		for e := range a.Counts[w] {
			if a.Counts[w][e] != c.Counts[w][e] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical assignments")
	}
}

// Property: token conservation and non-negativity hold for arbitrary
// shapes and skews.
func TestZipfConservationProperty(t *testing.T) {
	prop := func(w, e, tk uint8, s10 uint8, seed int64) bool {
		nw := int(w%8) + 1
		ne := int(e%32) + 1
		tokens := int(tk)*8 + 1
		s := float64(s10%30) / 10
		a := Zipf(nw, ne, tokens, s, seed)
		if a.Validate() != nil {
			return false
		}
		for i := 0; i < nw; i++ {
			if a.WorkerTokens(i) != tokens {
				return false
			}
		}
		return a.TotalTokens() == nw*tokens
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpertLoadSums(t *testing.T) {
	a := Zipf(4, 8, 100, 1.0, 3)
	var byExpert int
	for e := 0; e < 8; e++ {
		byExpert += a.ExpertLoad(e)
	}
	if byExpert != a.TotalTokens() {
		t.Fatalf("expert loads sum %d != total %d", byExpert, a.TotalTokens())
	}
}

func TestSeriesDrift(t *testing.T) {
	sr := Series{NumWorkers: 4, NumExperts: 16, TokensPerWorker: 2048,
		S0: 0, S1: 2, Iterations: 5, Seed: 9}
	first := sr.At(0).ImbalanceFactor()
	last := sr.At(4).ImbalanceFactor()
	if !(last > first) {
		t.Fatalf("drift did not increase imbalance: %v -> %v", first, last)
	}
	// Single-iteration series degenerates to S0.
	one := Series{NumWorkers: 2, NumExperts: 4, TokensPerWorker: 64,
		S0: 1, S1: 2, Iterations: 1, Seed: 9}
	if one.At(0).Validate() != nil {
		t.Fatal("degenerate series invalid")
	}
}

func TestEmptyAssignmentImbalance(t *testing.T) {
	a := New(2, 4)
	if f := a.ImbalanceFactor(); f != 1 {
		t.Fatalf("empty imbalance = %v, want 1", f)
	}
}

func TestSamplerDeterministicAndDistinct(t *testing.T) {
	sp := NewSampler(16, 3, 1.0, 42)
	for req := uint64(0); req < 200; req++ {
		a := sp.Experts(req)
		b := sp.Experts(req)
		if len(a) != 3 {
			t.Fatalf("req %d: %d experts, want 3", req, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("req %d: replay diverged: %v vs %v", req, a, b)
			}
			if a[i] < 0 || a[i] >= 16 {
				t.Fatalf("req %d: expert %d out of range", req, a[i])
			}
			for j := 0; j < i; j++ {
				if a[i] == a[j] {
					t.Fatalf("req %d: duplicate expert in %v", req, a)
				}
			}
		}
	}
	// A second sampler with the same seed is a clone; a different seed
	// must eventually differ.
	twin := NewSampler(16, 3, 1.0, 42)
	other := NewSampler(16, 3, 1.0, 43)
	same, diff := true, false
	for req := uint64(0); req < 50; req++ {
		a, b, c := sp.Experts(req), twin.Experts(req), other.Experts(req)
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
			if a[i] != c[i] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same-seed samplers diverged")
	}
	if !diff {
		t.Fatal("different-seed samplers identical")
	}
}

func TestSamplerZipfSkew(t *testing.T) {
	// With a strong exponent the low-index experts must dominate the
	// draw — the flash-crowd hot-expert property the serving plane
	// stresses.
	sp := NewSampler(16, 1, 1.2, 7)
	counts := make([]int, 16)
	for req := uint64(0); req < 4000; req++ {
		counts[sp.Experts(req)[0]]++
	}
	if counts[0] <= counts[8] || counts[0] <= counts[15] {
		t.Fatalf("no Zipf skew visible: %v", counts)
	}
	head := counts[0] + counts[1] + counts[2]
	if head*2 < 4000 {
		t.Fatalf("hot head holds %d/4000 draws, want a majority", head)
	}
	// Uniform (s = 0) must not concentrate like that.
	uni := NewSampler(16, 1, 0, 7)
	ucounts := make([]int, 16)
	for req := uint64(0); req < 4000; req++ {
		ucounts[uni.Experts(req)[0]]++
	}
	uhead := ucounts[0] + ucounts[1] + ucounts[2]
	if uhead*2 >= 4000 {
		t.Fatalf("uniform sampler concentrated: %v", ucounts)
	}
}

func TestSamplerInvalidShapesPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSampler(0, 1, 1, 1) },
		func() { NewSampler(4, 0, 1, 1) },
		func() { NewSampler(4, 5, 1, 1) },
		func() { NewSampler(4, 2, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid sampler shape did not panic")
				}
			}()
			fn()
		}()
	}
}
