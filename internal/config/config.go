// Package config defines model and scenario configurations: the block
// structure of the evaluated MoE models (Table 1 and §7.5 of the Janus
// paper), cluster shapes, and the per-block paradigm choice that makes
// Janus a *unified* framework.
package config

import (
	"fmt"

	"janus/internal/costmodel"
)

// Paradigm selects how an MoE block's communication is implemented.
type Paradigm int

const (
	// ExpertCentric keeps experts in place and moves tokens (All-to-All).
	ExpertCentric Paradigm = iota
	// DataCentric keeps tokens in place and moves experts (Janus pull).
	DataCentric
)

func (p Paradigm) String() string {
	switch p {
	case ExpertCentric:
		return "expert-centric"
	case DataCentric:
		return "data-centric"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// BlockKind distinguishes dense Transformer blocks from MoE blocks.
type BlockKind int

const (
	Dense BlockKind = iota
	MoE
)

func (k BlockKind) String() string {
	if k == Dense {
		return "dense"
	}
	return "moe"
}

// Block is one layer of the model.
type Block struct {
	Index      int
	Kind       BlockKind
	NumExperts int // experts in the block's expert layer; 0 for dense
}

// Model is a full model configuration: the training shape (per-worker
// batch B, sequence length S, gate top-k, hidden dim H) and the block
// structure.
type Model struct {
	Name   string
	B      int // per-worker batch size
	S      int // sequence length
	K      int // gate topK
	H      int // hidden (expert) dimension
	Blocks []Block
}

// Validate reports whether the model is internally consistent and
// partitionable over the given number of workers.
func (m Model) Validate(numWorkers int) error {
	if m.B < 1 || m.S < 1 || m.K < 1 || m.H < 1 {
		return fmt.Errorf("config: model %q has non-positive shape B=%d S=%d K=%d H=%d", m.Name, m.B, m.S, m.K, m.H)
	}
	if len(m.Blocks) == 0 {
		return fmt.Errorf("config: model %q has no blocks", m.Name)
	}
	for i, b := range m.Blocks {
		if b.Index != i {
			return fmt.Errorf("config: model %q block %d has index %d", m.Name, i, b.Index)
		}
		switch b.Kind {
		case Dense:
			if b.NumExperts != 0 {
				return fmt.Errorf("config: model %q dense block %d has experts", m.Name, i)
			}
		case MoE:
			if b.NumExperts < 1 {
				return fmt.Errorf("config: model %q MoE block %d has no experts", m.Name, i)
			}
			if b.NumExperts%numWorkers != 0 {
				return fmt.Errorf("config: model %q MoE block %d: %d experts not divisible by %d workers",
					m.Name, i, b.NumExperts, numWorkers)
			}
			if m.K > b.NumExperts {
				return fmt.Errorf("config: model %q MoE block %d: topK %d > %d experts", m.Name, i, m.K, b.NumExperts)
			}
		default:
			return fmt.Errorf("config: model %q block %d has unknown kind", m.Name, i)
		}
	}
	return nil
}

// MoEBlockIndices returns the indices of the MoE blocks, in order.
func (m Model) MoEBlockIndices() []int {
	var out []int
	for _, b := range m.Blocks {
		if b.Kind == MoE {
			out = append(out, b.Index)
		}
	}
	return out
}

// NumMoEBlocks returns the number of MoE blocks.
func (m Model) NumMoEBlocks() int { return len(m.MoEBlockIndices()) }

// ExpertsPerWorker returns E for a block: resident experts per worker.
func (m Model) ExpertsPerWorker(block, numWorkers int) int {
	b := m.Blocks[block]
	if b.Kind != MoE {
		return 0
	}
	return b.NumExperts / numWorkers
}

// TokensPerWorker returns T = B·S·K.
func (m Model) TokensPerWorker() float64 {
	return costmodel.TokensPerWorker(m.B, m.S, m.K)
}

// GainR returns the paradigm-selection metric R = BSk/(4nHE) for one
// MoE block given the cluster shape (equation 1 of the paper).
func (m Model) GainR(block, numMachines, numWorkers int) float64 {
	e := m.ExpertsPerWorker(block, numWorkers)
	if e == 0 {
		return 0
	}
	return costmodel.GainR(m.B, m.S, m.K, numMachines, m.H, e)
}

// blocksWithMoE builds a block list with MoE blocks at the given indices.
func blocksWithMoE(total int, moeExperts map[int]int) []Block {
	blocks := make([]Block, total)
	for i := range blocks {
		blocks[i] = Block{Index: i, Kind: Dense}
		if e, ok := moeExperts[i]; ok {
			blocks[i] = Block{Index: i, Kind: MoE, NumExperts: e}
		}
	}
	return blocks
}

// uniformMoE maps each index in idx to numExperts experts.
func uniformMoE(idx []int, numExperts int) map[int]int {
	m := make(map[int]int, len(idx))
	for _, i := range idx {
		m[i] = numExperts
	}
	return m
}

// MoEBERT returns the Table 1 MoE-BERT configuration: 12 blocks, the
// 2nd, 5th, 8th and 11th expanded as MoE blocks (indices 1,4,7,10),
// B=256, S=128, k=2, H=768.
func MoEBERT(numExperts int) Model {
	return Model{
		Name: "MoE-BERT", B: 256, S: 128, K: 2, H: 768,
		Blocks: blocksWithMoE(12, uniformMoE([]int{1, 4, 7, 10}, numExperts)),
	}
}

// MoEGPT returns the Table 1 MoE-GPT configuration: 12 blocks with the
// 11th (index 10) expanded as an MoE block, B=256, S=64, k=4, H=768.
func MoEGPT(numExperts int) Model {
	return Model{
		Name: "MoE-GPT", B: 256, S: 64, K: 4, H: 768,
		Blocks: blocksWithMoE(12, uniformMoE([]int{10}, numExperts)),
	}
}

// MoETransformerXL returns the Table 1 MoE-Transformer-XL configuration:
// all 12 blocks are MoE blocks, B=64, S=512, k=2, H=256.
func MoETransformerXL(numExperts int) Model {
	idx := make([]int, 12)
	for i := range idx {
		idx[i] = i
	}
	return Model{
		Name: "MoE-TransformerXL", B: 64, S: 512, K: 2, H: 256,
		Blocks: blocksWithMoE(12, uniformMoE(idx, numExperts)),
	}
}

// PRMoETransformerXL returns the §7.5 Pyramid-Residual MoE model:
// four MoE blocks, the first two shallow (shallowExperts) and the last
// two deep (deepExperts). The paper's runs use (16, 64) with B=32 on 16
// GPUs and (32, 128) with B=64 on 32 GPUs; S=256, k=2, H=256.
func PRMoETransformerXL(shallowExperts, deepExperts, batch int) Model {
	return Model{
		Name: "PR-MoE-TransformerXL", B: batch, S: 256, K: 2, H: 256,
		Blocks: blocksWithMoE(12, map[int]int{
			2: shallowExperts, 5: shallowExperts,
			8: deepExperts, 11: deepExperts,
		}),
	}
}

// Scenario pairs a model with the cluster size it is evaluated on.
type Scenario struct {
	Model   Model
	NumGPUs int
}

// Table1Scenarios returns the six (model, cluster-size) combinations of
// Table 1: each model with 16 experts on 16 GPUs and 32 experts on 32
// GPUs.
func Table1Scenarios() []Scenario {
	var out []Scenario
	for _, n := range []int{16, 32} {
		out = append(out,
			Scenario{MoEBERT(n), n},
			Scenario{MoEGPT(n), n},
			Scenario{MoETransformerXL(n), n},
		)
	}
	return out
}

// Policy decides the paradigm for an MoE block from its gain metric R.
type Policy struct {
	// RThreshold is the value R must exceed for the block to use the
	// data-centric paradigm.
	RThreshold float64
}

// NominalPolicy returns the paper's stated rule: data-centric when R>1
// (§5.1.3).
func NominalPolicy() Policy { return Policy{RThreshold: 1} }

// ConservativePolicy returns the rule the paper actually applies in
// §7.5: because the PCIe link between switch and CPU keeps the NIC from
// reaching line rate on expert fetches, expert-centric is preferred
// until the theoretical gain has ~2× headroom.
func ConservativePolicy() Policy { return Policy{RThreshold: 2} }

// Choose maps a block's R to a paradigm.
func (p Policy) Choose(r float64) Paradigm {
	if r > p.RThreshold {
		return DataCentric
	}
	return ExpertCentric
}
