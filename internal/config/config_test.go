package config

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	cases := []struct {
		m       Model
		workers int
	}{
		{MoEBERT(16), 16},
		{MoEBERT(32), 32},
		{MoEGPT(16), 16},
		{MoEGPT(32), 32},
		{MoETransformerXL(16), 16},
		{MoETransformerXL(32), 32},
		{PRMoETransformerXL(16, 64, 32), 16},
		{PRMoETransformerXL(32, 128, 64), 32},
	}
	for _, c := range cases {
		if err := c.m.Validate(c.workers); err != nil {
			t.Errorf("%s on %d workers: %v", c.m.Name, c.workers, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	m := MoEBERT(16)
	if err := m.Validate(32); err == nil {
		t.Error("16 experts over 32 workers accepted")
	}
	bad := m
	bad.B = 0
	if err := bad.Validate(16); err == nil {
		t.Error("B=0 accepted")
	}
	badBlocks := MoEGPT(16)
	badBlocks.Blocks[10].NumExperts = 0
	if err := badBlocks.Validate(16); err == nil {
		t.Error("MoE block with 0 experts accepted")
	}
	dense := MoEGPT(16)
	dense.Blocks[0].NumExperts = 4
	if err := dense.Validate(16); err == nil {
		t.Error("dense block with experts accepted")
	}
	topk := MoEGPT(16)
	topk.K = 64
	if err := topk.Validate(16); err == nil {
		t.Error("topK > numExperts accepted")
	}
}

func TestBlockStructure(t *testing.T) {
	bert := MoEBERT(32)
	if got := bert.MoEBlockIndices(); len(got) != 4 ||
		got[0] != 1 || got[1] != 4 || got[2] != 7 || got[3] != 10 {
		t.Fatalf("BERT MoE blocks = %v, want [1 4 7 10]", got)
	}
	gpt := MoEGPT(32)
	if got := gpt.MoEBlockIndices(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("GPT MoE blocks = %v, want [10]", got)
	}
	xl := MoETransformerXL(32)
	if got := xl.NumMoEBlocks(); got != 12 {
		t.Fatalf("Transformer-XL MoE blocks = %d, want 12", got)
	}
	pr := PRMoETransformerXL(16, 64, 32)
	if pr.Blocks[2].NumExperts != 16 || pr.Blocks[11].NumExperts != 64 {
		t.Fatalf("PR-MoE expert counts wrong: %v / %v", pr.Blocks[2].NumExperts, pr.Blocks[11].NumExperts)
	}
}

func TestExpertsPerWorker(t *testing.T) {
	pr := PRMoETransformerXL(16, 64, 32)
	if got := pr.ExpertsPerWorker(2, 16); got != 1 {
		t.Fatalf("shallow E = %d, want 1", got)
	}
	if got := pr.ExpertsPerWorker(8, 16); got != 4 {
		t.Fatalf("deep E = %d, want 4", got)
	}
	if got := pr.ExpertsPerWorker(0, 16); got != 0 {
		t.Fatalf("dense E = %d, want 0", got)
	}
}

// TestPaperGainValues checks the R values the paper quotes for the
// Figure 14 configs (5.33, 5.33, 16 at 32 GPUs / 4 machines) and the
// §7.5 PR-MoE configs (4 and 1 at 16 GPUs over 4 machines).
func TestPaperGainValues(t *testing.T) {
	approx := func(a, b float64) bool { return math.Abs(a-b) < 0.01*b }
	if r := MoEBERT(32).GainR(1, 4, 32); !approx(r, 5.33) {
		t.Errorf("BERT R = %v, want 5.33", r)
	}
	if r := MoEGPT(32).GainR(10, 4, 32); !approx(r, 5.33) {
		t.Errorf("GPT R = %v, want 5.33", r)
	}
	if r := MoETransformerXL(32).GainR(0, 4, 32); !approx(r, 16) {
		t.Errorf("Transformer-XL R = %v, want 16", r)
	}
	pr16 := PRMoETransformerXL(16, 64, 32)
	if r := pr16.GainR(2, 4, 16); !approx(r, 4) {
		t.Errorf("PR-MoE shallow R = %v, want 4", r)
	}
	if r := pr16.GainR(8, 4, 16); !approx(r, 1) {
		t.Errorf("PR-MoE deep R = %v, want 1", r)
	}
}

func TestPolicyChoice(t *testing.T) {
	nominal := NominalPolicy()
	if nominal.Choose(1.01) != DataCentric || nominal.Choose(1.0) != ExpertCentric {
		t.Error("nominal policy threshold wrong")
	}
	cons := ConservativePolicy()
	if cons.Choose(2.0) != ExpertCentric || cons.Choose(2.1) != DataCentric {
		t.Error("conservative policy threshold wrong")
	}
}

func TestTable1Scenarios(t *testing.T) {
	sc := Table1Scenarios()
	if len(sc) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(sc))
	}
	for _, s := range sc {
		if err := s.Model.Validate(s.NumGPUs); err != nil {
			t.Errorf("%s/%d: %v", s.Model.Name, s.NumGPUs, err)
		}
	}
}

// Property: GainR of a model equals the costmodel formula and is
// invariant to which equal-expert MoE block is asked.
func TestGainRConsistencyProperty(t *testing.T) {
	xl := MoETransformerXL(32)
	prop := func(b1, b2 uint8) bool {
		i, j := int(b1%12), int(b2%12)
		return xl.GainR(i, 4, 32) == xl.GainR(j, 4, 32)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParadigmStrings(t *testing.T) {
	if ExpertCentric.String() != "expert-centric" || DataCentric.String() != "data-centric" {
		t.Error("paradigm strings wrong")
	}
	if Dense.String() != "dense" || MoE.String() != "moe" {
		t.Error("block kind strings wrong")
	}
}
