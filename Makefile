# Verify tiers. Tier 1 is the seed contract (ROADMAP.md); the race
# tier vets and race-checks the concurrent retry/reconnect/degradation
# code at reduced test sizes (-short skips the long experiment sweeps)
# and smoke-fuzzes the wire decoders (frame, JGR1 gradient, the JOIN
# admit payload, the checkpoint migration stream, the REPL replica
# snapshot, and the SERVE inference micro-batch) so every verify run
# spends a few seconds hunting parser panics beyond the seeded corpus.
.PHONY: verify tier1 race fuzz cover bench

verify: tier1 race

tier1:
	go build ./... && go test ./...

race: fuzz
	go vet ./... && go test -race -short ./...

fuzz:
	go test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 10s ./internal/transport
	go test -run '^$$' -fuzz '^FuzzDecodeAdmit$$' -fuzztime 10s ./internal/transport
	go test -run '^$$' -fuzz '^FuzzDecodeRepl$$' -fuzztime 10s ./internal/transport
	go test -run '^$$' -fuzz '^FuzzDecodeServe$$' -fuzztime 10s ./internal/transport
	go test -run '^$$' -fuzz '^FuzzDecodeTrainGrad$$' -fuzztime 10s ./internal/livecluster
	go test -run '^$$' -fuzz '^FuzzDecodeStream$$' -fuzztime 10s ./internal/checkpoint

# Per-package coverage for the fault-tolerance path: the wire protocol,
# the live cluster (membership/failover), the injector, the checkpoint
# store, and the counters.
cover:
	go test -short -cover \
		./internal/transport \
		./internal/livecluster \
		./internal/faultinject \
		./internal/checkpoint \
		./internal/metrics

# Record the performance trajectory: run the micro-benchmarks (fabric
# admission/reallocation and the 32–4096-machine scaling curve, tensor
# kernels, transport framing, livecluster iteration, lockstep-vs-
# pipelined training) and write them as JSON. The Seed/Oracle variants
# pin the pre-optimization code paths, the A2AScale/AdmissionScale
# *Hier points carry the hierarchical allocator's curve, and the
# TrainLockstep*/TrainPipelined* pairs (loopback and 100µs-RTT) carry
# the cross-step pipeline's steps/sec ratio, so the speedups are in the
# file.
bench:
	go test -run '^$$' -bench . -benchmem \
		./internal/fabric \
		./internal/tensor \
		./internal/transport \
		./internal/livecluster \
		| tee /dev/stderr | go run ./cmd/benchjson -baseline BENCH_5.json > BENCH_6.json
