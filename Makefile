# Verify tiers. Tier 1 is the seed contract (ROADMAP.md); the race
# tier vets and race-checks the concurrent retry/reconnect/degradation
# code at reduced test sizes (-short skips the long experiment sweeps).
.PHONY: verify tier1 race cover

verify: tier1 race

tier1:
	go build ./... && go test ./...

race:
	go vet ./... && go test -race -short ./...

# Per-package coverage for the fault-tolerance path: the wire protocol,
# the live cluster (membership/failover), the injector, the checkpoint
# store, and the counters.
cover:
	go test -short -cover \
		./internal/transport \
		./internal/livecluster \
		./internal/faultinject \
		./internal/checkpoint \
		./internal/metrics
