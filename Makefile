# Verify tiers. Tier 1 is the seed contract (ROADMAP.md); the race
# tier vets and race-checks the concurrent retry/reconnect/degradation
# code at reduced test sizes (-short skips the long experiment sweeps).
.PHONY: verify tier1 race

verify: tier1 race

tier1:
	go build ./... && go test ./...

race:
	go vet ./... && go test -race -short ./...
