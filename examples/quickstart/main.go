// Quickstart: train one iteration of MoE-BERT on a simulated 4-machine
// A100 cluster under both paradigms and print the speedup — the
// 20-line version of the paper's Figure 14.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	model := janus.MoEBERT(32)   // Table 1: 32 experts on 32 GPUs
	spec := janus.DefaultSpec(4) // 4 machines × 8 A100s, paper testbed

	tutel, err := janus.TrainExpertCentric(janus.BaselineConfig{Model: model, Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := janus.TrainJanus(janus.JanusConfig{
		Model: model, Spec: spec,
		TopoAware: true, Prefetch: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("expert-centric (Tutel): ", tutel)
	fmt.Println("data-centric   (Janus): ", fast)
	fmt.Printf("speedup: %.2fx, inter-node traffic reduced %.1fx\n",
		tutel.IterationTime/fast.IterationTime,
		tutel.InterNodeEgressBytes/fast.InterNodeEgressBytes)
}
