// prmoe_unified walks through §7.5 of the paper: on a Pyramid-Residual
// MoE model the gain metric R differs per block, so neither pure
// paradigm is optimal — Janus runs the shallow (high-R) blocks
// data-centric and the deep (low-R) blocks expert-centric, and beats
// both pure configurations.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	// The paper's 16-GPU run: 4 machines × 4 GPUs; the first two MoE
	// blocks have 16 experts (R=4), the last two have 64 (R=1).
	model := janus.PRMoETransformerXL(16, 64, 32)
	spec := janus.DefaultSpec(4)
	spec.GPUsPerNode = 4
	workers := spec.TotalGPUs()
	assign := func(block int) janus.Assignment {
		return janus.ZipfAssignment(workers, model.Blocks[block].NumExperts,
			int(model.TokensPerWorker()), 0.3, int64(block)+1)
	}

	fmt.Println("per-block paradigm choice (conservative policy):")
	paradigms := janus.BlockParadigms(janus.JanusConfig{
		Model: model, Spec: spec, Policy: janus.ConservativePolicy(),
	})
	for i, blk := range model.Blocks {
		if blk.NumExperts == 0 {
			continue
		}
		r := model.GainR(i, spec.NumMachines, workers)
		fmt.Printf("  block %2d: %3d experts, R=%.1f -> %v\n", i, blk.NumExperts, r, paradigms[i])
	}

	run := func(force *janus.Paradigm) janus.Report {
		rep, err := janus.TrainJanus(janus.JanusConfig{
			Model: model, Spec: spec, Assignment: assign,
			Policy: janus.ConservativePolicy(), ForceParadigm: force,
			TopoAware: true, Prefetch: true, SkipMemoryCheck: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	ec, dc := janus.ExpertCentric, janus.DataCentric
	pureEC := run(&ec)
	pureDC := run(&dc)
	unified := run(nil)

	fmt.Printf("\npure expert-centric: %7.1f ms\n", pureEC.IterationTime*1e3)
	fmt.Printf("pure data-centric:   %7.1f ms\n", pureDC.IterationTime*1e3)
	fmt.Printf("unified Janus:       %7.1f ms  (%.2fx over pure expert-centric)\n",
		unified.IterationTime*1e3, pureEC.IterationTime/unified.IterationTime)
}
