// moegpt_trace reproduces the paper's Figure 13 study: trace one
// MoE-GPT forward pass with provident prefetch and show how expert
// fetches overlap the computation of the 11 dense blocks before the
// MoE block, then quantify the overlap against a no-prefetch run.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	model := janus.MoEGPT(32)
	spec := janus.DefaultSpec(4)
	workers := spec.TotalGPUs()
	assign := func(block int) janus.Assignment {
		return janus.ZipfAssignment(workers, model.Blocks[block].NumExperts,
			int(model.TokensPerWorker()), 0.3, int64(block)+1)
	}

	run := func(prefetch bool) janus.Report {
		rep, err := janus.TrainJanus(janus.JanusConfig{
			Model: model, Spec: spec, Assignment: assign,
			Prefetch: prefetch, CreditSize: 12, Trace: true,
			SkipMemoryCheck: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	with := run(true)
	without := run(false)

	fmt.Println("block completions on worker 0 (ms):")
	for _, m := range with.Timeline.MarksNamed("fwd.block") {
		fmt.Printf("  %-18s %8.1f\n", m.Name, m.At*1e3)
	}
	fmt.Println("\nexpert arrivals for the MoE block (block 10) on worker 0 (ms):")
	gate, _ := with.Timeline.MarkAt("fwd.block9.done")
	early := 0
	for _, m := range with.Timeline.MarksNamed("expert.block10.ep") {
		tag := ""
		if m.At < gate {
			tag = "  (before the gate)"
			early++
		}
		fmt.Printf("  %-30s %8.1f%s\n", m.Name, m.At*1e3, tag)
	}
	fmt.Printf("\n%d experts arrived before the MoE gate (paper: 12)\n", early)
	fmt.Printf("forward: %.1f ms with prefetch, %.1f ms without — overlap %.1f ms, speedup %.2fx\n",
		with.ForwardTime*1e3, without.ForwardTime*1e3,
		(without.ForwardTime-with.ForwardTime)*1e3,
		without.ForwardTime/with.ForwardTime)
	fmt.Println("(paper: forward 210.4 ms, overlap ~74.9 ms, 1.36x)")
}
