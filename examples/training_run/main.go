// training_run simulates a short training run (not a single iteration)
// with a gate whose routing drifts from near-uniform to skewed, the way
// real MoE gates specialise during training — the §3.1 methodology of
// averaging many iterations. The synchronous baseline degrades as the
// gate skews (its All-to-All waits for the hottest expert's owner);
// Janus's iteration time stays flat because each worker only ever
// computes its own tokens.
package main

import (
	"fmt"
	"log"

	"janus"
)

func main() {
	base := janus.TrainRunConfig{
		Model: janus.MoEGPT(32), Spec: janus.DefaultSpec(4),
		Iterations: 6, SkewStart: 0.0, SkewEnd: 1.0, Seed: 21,
		TopoAware: true, Prefetch: true,
	}

	tutelCfg := base
	tutelCfg.Engine = janus.TutelEngine
	tutel, err := janus.TrainRun(tutelCfg)
	if err != nil {
		log.Fatal(err)
	}
	janusCfg := base
	janusCfg.Engine = janus.JanusEngine
	fast, err := janus.TrainRun(janusCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-iteration times as the gate drifts (imbalance in brackets):")
	fmt.Printf("%6s %12s %12s %12s\n", "iter", "imbalance", "tutel(ms)", "janus(ms)")
	for i := range tutel.IterationTimes {
		fmt.Printf("%6d %11.2fx %12.1f %12.1f\n",
			i, tutel.Imbalance[i], tutel.IterationTimes[i]*1e3, fast.IterationTimes[i]*1e3)
	}
	fmt.Println()
	fmt.Print(tutel.Render())
	fmt.Println()
	fmt.Print(fast.Render())
	fmt.Printf("\nrun-level speedup: %.2fx (throughput %.2f vs %.2f Mtokens/s)\n",
		tutel.Time.Mean/fast.Time.Mean, fast.Throughput()/1e6, tutel.Throughput()/1e6)
}
