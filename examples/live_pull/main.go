// live_pull demonstrates the data-centric paradigm with real bytes on
// real sockets: a miniature cluster of TCP "machines" hosting real
// expert weights, workers pulling experts through the §6 protocol
// (single flight per machine, credit window), and a numeric proof that
// the result equals the expert-centric computation exactly.
package main

import (
	"fmt"
	"log"

	"janus"
	"janus/internal/tensor"
)

func main() {
	cfg := janus.LiveConfig{
		Machines: 2, WorkersPerNode: 2,
		NumExperts: 8, TopK: 2, Hidden: 32,
		TokensPerWorker: 512, // R = T/(4nHE) = 512*2/(4*2*32*2) = 2
		Seed:            7, Credits: 4,
	}
	cl, err := janus.StartLiveCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.RunDataCentric()
	if err != nil {
		log.Fatal(err)
	}
	ref := cl.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			log.Fatalf("worker %d output differs from the expert-centric reference", w)
		}
	}
	fmt.Println("outputs are bit-identical to the expert-centric reference")
	fmt.Printf("expert pulls over TCP: %d (each machine fetched each external expert once)\n",
		res.PullsServed)
	tokenBytes := cl.TokenExchangeBytes()
	fmt.Printf("cross-machine bytes: %d (expert fetch) vs %d (token exchange) = %.1fx reduction\n",
		res.CrossMachineBytes, tokenBytes,
		float64(tokenBytes)/float64(res.CrossMachineBytes))
}
